//! Wire format, signing surface, and the Byzantine reliable broadcast
//! (BRB) state machine.
//!
//! The protocol is Bracha's classic three-phase reliable broadcast
//! over a fixed membership of `n = 3f + 1` (tolerating `f` Byzantine
//! nodes; smaller clusters get `f = (n-1)/3`):
//!
//! 1. the origin signs an [`OpEnvelope`] and **Send**s it to everyone;
//! 2. on the first valid Send for `(origin, seq)`, a node **Echo**s
//!    the envelope's digest to everyone;
//! 3. on `⌈(n+f+1)/2⌉` matching Echoes — or `f + 1` matching Readies
//!    (amplification) — a node sends **Ready**;
//! 4. on `2f + 1` matching Readies, the node **delivers** the op.
//!
//! Agreement holds per `(origin, seq)` slot: two honest nodes can
//! never deliver different ops for the same slot, because conflicting
//! digests cannot both reach the echo quorum. An equivocating origin
//! therefore gets at most one of its conflicting ops delivered —
//! possibly neither — but never splits the honest nodes.
//!
//! Every message carries two signatures: the origin's signature over
//! the envelope (so an op cannot be forged in another node's name even
//! when relayed) and the immediate sender's link signature over the
//! whole payload (so Echo/Ready votes cannot be stuffed). Signing goes
//! through the [`OpSigner`] trait; the in-tree implementation is the
//! vendored ed25519 stand-in, and a real Ed25519 signer can slot in
//! without touching the state machine.

use crate::orset::{Dot, LabelOp, LabelRecord};
use ed25519_dalek::{Signature, Signer, SigningKey, Verifier, VerifyingKey};
use sha2::{Digest as _, Sha256};
use std::collections::{BTreeMap, BTreeSet};

/// Cluster-wide node identifier (index into the membership table).
pub type NodeId = u32;

/// A SHA-256 digest of an envelope's canonical encoding — the value
/// echo/ready votes are counted against.
pub type OpDigest = [u8; 32];

// ---- canonical encoding ----
//
// Hand-rolled length-prefixed encoding: deterministic, self-delimiting,
// no external serializer needed. Only ever hashed and signed — never
// decoded — so it stays write-only.

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u64).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_dot(out: &mut Vec<u8>, d: &Dot) {
    put_u64(out, d.actor as u64);
    put_u64(out, d.counter);
}

fn put_record(out: &mut Vec<u8>, r: &LabelRecord) {
    put_str(out, &r.subject);
    put_str(out, &r.speaker);
    put_str(out, &r.statement);
}

fn put_op(out: &mut Vec<u8>, op: &LabelOp) {
    match op {
        LabelOp::Mint { dot, label } => {
            out.push(1);
            put_dot(out, dot);
            put_record(out, label);
        }
        LabelOp::Revoke { label, dots } => {
            out.push(2);
            put_record(out, label);
            put_u64(out, dots.len() as u64);
            for d in dots {
                put_dot(out, d);
            }
        }
        LabelOp::Transfer {
            label,
            dots,
            to_subject,
            dot,
        } => {
            out.push(3);
            put_record(out, label);
            put_u64(out, dots.len() as u64);
            for d in dots {
                put_dot(out, d);
            }
            put_str(out, to_subject);
            put_dot(out, dot);
        }
    }
}

// ---- signing surface ----

/// The signing surface the broadcast layer needs from a node identity.
/// Implemented by [`SimEd25519`] over the vendored stand-in; a real
/// Ed25519 (or TPM-backed) signer implements the same two methods.
pub trait OpSigner: Send {
    /// The 32-byte public verification key peers hold for this node.
    fn public(&self) -> [u8; 32];
    /// Sign `msg`, returning the 64-byte signature.
    fn sign(&self, msg: &[u8]) -> [u8; 64];
}

/// [`OpSigner`] over the vendored ed25519-dalek stand-in.
pub struct SimEd25519 {
    key: SigningKey,
}

impl SimEd25519 {
    /// Derive a node keypair deterministically from a cluster seed and
    /// node id (test clusters must be replayable from one seed).
    pub fn from_seed(cluster_seed: u64, node: NodeId) -> SimEd25519 {
        let mut input = Vec::new();
        put_str(&mut input, "nexus-dist-node-key");
        put_u64(&mut input, cluster_seed);
        put_u64(&mut input, node as u64);
        let digest = Sha256::digest(&input);
        SimEd25519 {
            key: SigningKey::from_bytes(&digest),
        }
    }
}

impl OpSigner for SimEd25519 {
    fn public(&self) -> [u8; 32] {
        self.key.verifying_key().to_bytes()
    }

    fn sign(&self, msg: &[u8]) -> [u8; 64] {
        self.key.sign(msg).to_bytes()
    }
}

/// The fixed cluster membership: node id → verification key. BRB
/// assumes a static membership agreed out of band (cluster boot).
#[derive(Debug, Clone)]
pub struct Membership {
    keys: Vec<[u8; 32]>,
}

impl Membership {
    /// Build from the ordered list of node verification keys.
    pub fn new(keys: Vec<[u8; 32]>) -> Membership {
        Membership { keys }
    }

    /// Cluster size `n`.
    pub fn n(&self) -> usize {
        self.keys.len()
    }

    /// Tolerated Byzantine nodes: `f = (n - 1) / 3`.
    pub fn f(&self) -> usize {
        (self.n() - 1) / 3
    }

    /// Echo quorum `⌈(n + f + 1) / 2⌉`.
    pub fn echo_quorum(&self) -> usize {
        (self.n() + self.f() + 2) / 2
    }

    /// Ready amplification threshold `f + 1`.
    pub fn ready_amplify(&self) -> usize {
        self.f() + 1
    }

    /// Delivery threshold `2f + 1`.
    pub fn deliver_quorum(&self) -> usize {
        2 * self.f() + 1
    }

    /// The verification key registered for `node`.
    pub fn key_of(&self, node: NodeId) -> Option<[u8; 32]> {
        self.keys.get(node as usize).copied()
    }

    /// All node ids.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.n() as NodeId
    }
}

fn verify_sig(key: &[u8; 32], msg: &[u8], sig: &[u8; 64]) -> bool {
    match (VerifyingKey::from_bytes(key), Signature::from_slice(sig)) {
        (Ok(vk), Ok(s)) => vk.verify(msg, &s).is_ok(),
        _ => false,
    }
}

// ---- envelopes and messages ----

/// A broadcast operation bound to its origin: `(origin, seq)` names
/// the BRB slot, and `sig` is the origin's signature over the
/// canonical encoding — relayed unchanged inside Echo/Ready, so a
/// Byzantine relay cannot alter or forge the op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpEnvelope {
    /// The originating node.
    pub origin: NodeId,
    /// The origin's per-node sequence number.
    pub seq: u64,
    /// The replicated label operation.
    pub op: LabelOp,
    /// Origin signature over [`OpEnvelope::signable`].
    pub sig: [u8; 64],
}

impl OpEnvelope {
    /// The canonical byte string the origin signs.
    pub fn signable(origin: NodeId, seq: u64, op: &LabelOp) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, "nexus-dist-op");
        put_u64(&mut out, origin as u64);
        put_u64(&mut out, seq);
        put_op(&mut out, op);
        out
    }

    /// Build and origin-sign an envelope.
    pub fn sign(origin: NodeId, seq: u64, op: LabelOp, signer: &dyn OpSigner) -> OpEnvelope {
        let sig = signer.sign(&OpEnvelope::signable(origin, seq, &op));
        OpEnvelope {
            origin,
            seq,
            op,
            sig,
        }
    }

    /// Digest the envelope (origin, seq, op, origin-sig) — the vote key.
    pub fn digest(&self) -> OpDigest {
        let mut out = OpEnvelope::signable(self.origin, self.seq, &self.op);
        put_bytes(&mut out, &self.sig);
        Sha256::digest(&out)
    }

    /// Verify the origin signature against `membership`.
    pub fn verify(&self, membership: &Membership) -> bool {
        match membership.key_of(self.origin) {
            Some(key) => verify_sig(
                &key,
                &OpEnvelope::signable(self.origin, self.seq, &self.op),
                &self.sig,
            ),
            None => false,
        }
    }
}

/// The three BRB phases. Echo and Ready carry the full envelope (not
/// just the digest) so late nodes can reconstruct the op from any
/// quorum — the origin signature inside keeps that relay unforgeable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Phase 1: the origin's broadcast.
    Send(OpEnvelope),
    /// Phase 2: a witness vote for the envelope's digest.
    Echo(OpEnvelope),
    /// Phase 3: a commitment to deliver.
    Ready(OpEnvelope),
}

impl Payload {
    /// The envelope inside.
    pub fn envelope(&self) -> &OpEnvelope {
        match self {
            Payload::Send(e) | Payload::Echo(e) | Payload::Ready(e) => e,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Payload::Send(_) => 1,
            Payload::Echo(_) => 2,
            Payload::Ready(_) => 3,
        }
    }

    /// The canonical byte string the link signature covers.
    pub fn signable(&self, from: NodeId) -> Vec<u8> {
        let e = self.envelope();
        let mut out = Vec::new();
        put_str(&mut out, "nexus-dist-msg");
        put_u64(&mut out, from as u64);
        out.push(self.tag());
        put_u64(&mut out, e.origin as u64);
        put_u64(&mut out, e.seq);
        put_op(&mut out, &e.op);
        put_bytes(&mut out, &e.sig);
        out
    }
}

/// One point-to-point message: a phase payload, link-signed by the
/// immediate sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The immediate sender (whose Echo/Ready vote this is).
    pub from: NodeId,
    /// The phase payload.
    pub payload: Payload,
    /// Link signature by `from` over [`Payload::signable`].
    pub sig: [u8; 64],
}

impl Message {
    /// Build and link-sign a message.
    pub fn sign(from: NodeId, payload: Payload, signer: &dyn OpSigner) -> Message {
        let sig = signer.sign(&payload.signable(from));
        Message { from, payload, sig }
    }

    /// Verify the link signature against `membership`.
    pub fn verify(&self, membership: &Membership) -> bool {
        match membership.key_of(self.from) {
            Some(key) => verify_sig(&key, &self.payload.signable(self.from), &self.sig),
            None => false,
        }
    }
}

// ---- the state machine ----

/// Per-origin cap on *undelivered* slots retained. A Byzantine member
/// can sign envelopes for unlimited fresh `seq` values under its own
/// id (it cannot forge another origin's envelope signature), each of
/// which would otherwise allocate slot state forever; beyond this
/// window its messages are dropped and counted. Honest traffic keeps
/// at most a handful of broadcasts in flight, far below the window.
const SLOT_WINDOW: usize = 64;

/// Per-`(origin, seq)` slot state. After delivery the vote tallies
/// are compacted away (see [`BrbState::try_deliver`]); what remains —
/// the accepted envelope and this node's own votes — is exactly what
/// anti-entropy re-announcement needs, so slot memory stops growing
/// the moment the slot's job is done.
#[derive(Debug, Default)]
struct Slot {
    /// The envelope this node first accepted (first valid Send from
    /// the origin wins; Echo/Ready for other digests still tally, but
    /// this is what the node votes for). Set to the delivered
    /// envelope at delivery even if no Send ever arrived here.
    accepted: Option<OpEnvelope>,
    /// Who echoed which digest.
    echoes: BTreeMap<OpDigest, BTreeSet<NodeId>>,
    /// Who sent ready for which digest.
    readies: BTreeMap<OpDigest, BTreeSet<NodeId>>,
    /// Envelopes seen for digests (from any phase), so delivery can
    /// reconstruct the op even if the Send never arrived here.
    seen: BTreeMap<OpDigest, OpEnvelope>,
    /// The Echo this node fanned out, retransmittable during
    /// anti-entropy and on replayed/relayed Sends.
    our_echo: Option<OpEnvelope>,
    /// The Ready this node fanned out, likewise retransmittable.
    our_ready: Option<OpEnvelope>,
    delivered: bool,
}

/// Counters the observability layer surfaces per node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrbCounters {
    /// Messages accepted and processed.
    pub accepted: u64,
    /// Messages dropped for a bad link or origin signature.
    pub rejected_sigs: u64,
    /// Sends conflicting with an already-accepted envelope for the
    /// same slot (an equivocating origin).
    pub equivocations: u64,
    /// Redundant messages (duplicate votes, replayed sends).
    pub duplicates: u64,
    /// Messages dropped by the per-origin undelivered-slot window or
    /// the per-slot digest cap (Byzantine flood defense).
    pub rejected_bounds: u64,
    /// Ops delivered.
    pub delivered: u64,
}

/// One node's BRB endpoint: a pure state machine — feed it messages,
/// collect outgoing messages and deliveries. Transport-agnostic (the
/// simulator owns scheduling; a socket loop could own it instead).
pub struct BrbState {
    id: NodeId,
    membership: Membership,
    next_seq: u64,
    slots: BTreeMap<(NodeId, u64), Slot>,
    /// Undelivered-slot count per origin, enforcing [`SLOT_WINDOW`].
    undelivered: BTreeMap<NodeId, usize>,
    /// Everything this node has origin'd or accepted as a Send —
    /// retransmitted verbatim during anti-entropy so quorums can
    /// re-form after a partition heals.
    known_sends: BTreeMap<(NodeId, u64), OpEnvelope>,
    counters: BrbCounters,
}

/// What handling one message produced: messages to transmit (fan-out
/// already applied) and ops that reached the delivery quorum.
#[derive(Debug, Default)]
pub struct Step {
    /// `(destination, message)` pairs to hand to the transport.
    pub outgoing: Vec<(NodeId, Message)>,
    /// Envelopes delivered, in order.
    pub delivered: Vec<OpEnvelope>,
}

impl BrbState {
    /// A fresh endpoint for `id` under `membership`.
    pub fn new(id: NodeId, membership: Membership) -> BrbState {
        BrbState {
            id,
            membership,
            next_seq: 0,
            slots: BTreeMap::new(),
            undelivered: BTreeMap::new(),
            known_sends: BTreeMap::new(),
            counters: BrbCounters::default(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The membership table.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Counter snapshot.
    pub fn counters(&self) -> BrbCounters {
        self.counters
    }

    fn fanout(&self, payload: Payload, signer: &dyn OpSigner) -> Vec<(NodeId, Message)> {
        let msg = Message::sign(self.id, payload, signer);
        self.membership
            .nodes()
            .map(|to| (to, msg.clone()))
            .collect()
    }

    /// Originate a broadcast of `op`: allocate the next sequence
    /// number, sign the envelope, and Send it to every node (including
    /// ourselves — self-delivery goes through the same quorum path, so
    /// an origin partitioned below quorum does *not* deliver locally).
    pub fn broadcast(&mut self, op: LabelOp, signer: &dyn OpSigner) -> Step {
        let seq = self.next_seq;
        self.next_seq += 1;
        let env = OpEnvelope::sign(self.id, seq, op, signer);
        self.known_sends.insert((self.id, seq), env.clone());
        Step {
            outgoing: self.fanout(Payload::Send(env), signer),
            delivered: Vec::new(),
        }
    }

    /// Retransmit every known Send *and this node's own Echo/Ready
    /// votes* — the anti-entropy pass a healed partition runs.
    /// Receivers treat a replayed Send idempotently but re-announce
    /// their votes for it; retransmitting our votes directly as well
    /// means a node that missed the original exchange can assemble a
    /// quorum even when the op's origin has crashed and will never
    /// retransmit its Send (totality does not depend on the origin
    /// surviving).
    pub fn anti_entropy(&mut self, signer: &dyn OpSigner) -> Step {
        let mut payloads: Vec<Payload> = self
            .known_sends
            .values()
            .cloned()
            .map(Payload::Send)
            .collect();
        for slot in self.slots.values() {
            if let Some(env) = &slot.our_echo {
                payloads.push(Payload::Echo(env.clone()));
            }
            if let Some(env) = &slot.our_ready {
                payloads.push(Payload::Ready(env.clone()));
            }
        }
        let mut out = Vec::new();
        for p in payloads {
            out.extend(self.fanout(p, signer));
        }
        Step {
            outgoing: out,
            delivered: Vec::new(),
        }
    }

    /// Handle one incoming message. Invalid signatures are counted and
    /// dropped; everything else advances the slot's phase machine.
    pub fn handle(&mut self, msg: &Message, signer: &dyn OpSigner) -> Step {
        let mut step = Step::default();
        if !msg.verify(&self.membership) || !msg.payload.envelope().verify(&self.membership) {
            self.counters.rejected_sigs += 1;
            return step;
        }

        let env = msg.payload.envelope().clone();
        let key = (env.origin, env.seq);
        let digest = env.digest();

        // Opening a new slot is bounded per origin: a Byzantine member
        // cannot allocate state for unlimited fresh seqs. (It can only
        // flood its *own* origin's window — envelopes for any other
        // origin need that origin's signature, checked above.)
        if !self.slots.contains_key(&key) {
            let active = self.undelivered.get(&env.origin).copied().unwrap_or(0);
            if active >= SLOT_WINDOW {
                self.counters.rejected_bounds += 1;
                return step;
            }
            self.undelivered.insert(env.origin, active + 1);
            self.slots.insert(key, Slot::default());
        }
        self.counters.accepted += 1;

        let digest_cap = self.membership.n();
        let slot = self.slots.get_mut(&key).expect("slot just ensured");

        // A delivered slot's tallies are gone; the only remaining duty
        // is re-announcing our votes when a (replayed or relayed) Send
        // asks for them, so vote maps can never regrow.
        if slot.delivered {
            self.counters.duplicates += 1;
            if matches!(msg.payload, Payload::Send(_)) {
                step.outgoing.extend(self.reannounce(key, &digest, signer));
            }
            return step;
        }

        // Bound distinct digests tracked per slot: honest operation
        // produces one (two under an equivocating origin); each costs
        // an envelope copy, so beyond `n` it can only be vote
        // stuffing by a member spraying self-signed variants.
        if !slot.seen.contains_key(&digest) && slot.seen.len() >= digest_cap {
            self.counters.rejected_bounds += 1;
            return step;
        }
        slot.seen.entry(digest).or_insert_with(|| env.clone());

        match &msg.payload {
            Payload::Send(_) => {
                match &slot.accepted {
                    Some(acc) if acc.digest() != digest => {
                        // A validly origin-signed conflicting envelope
                        // for an accepted slot — whether carried by
                        // the origin or a relay — is proof the origin
                        // equivocated. First valid Send wins.
                        self.counters.equivocations += 1;
                        return step;
                    }
                    Some(_) => {
                        // Replayed or relayed Send for the envelope we
                        // hold: re-announce our votes so a healed
                        // partition can rebuild the quorum.
                        self.counters.duplicates += 1;
                        step.outgoing.extend(self.reannounce(key, &digest, signer));
                        return step;
                    }
                    None if msg.from == env.origin => {
                        slot.accepted = Some(env.clone());
                        slot.our_echo = Some(env.clone());
                        self.known_sends.insert(key, env.clone());
                        step.outgoing
                            .extend(self.fanout(Payload::Echo(env), signer));
                    }
                    None => {
                        // Relayed Send for a slot we never accepted:
                        // only the origin's own link opens a slot
                        // (acceptance stays origin-gated), but any
                        // votes we do hold — e.g. a Ready reached via
                        // amplification — are still re-announced.
                        self.counters.duplicates += 1;
                        step.outgoing.extend(self.reannounce(key, &digest, signer));
                        return step;
                    }
                }
            }
            Payload::Echo(_) => {
                if !slot.echoes.entry(digest).or_default().insert(msg.from) {
                    self.counters.duplicates += 1;
                    return step;
                }
            }
            Payload::Ready(_) => {
                if !slot.readies.entry(digest).or_default().insert(msg.from) {
                    self.counters.duplicates += 1;
                    return step;
                }
            }
        }

        step.outgoing.extend(self.advance(key, signer));
        if let Some(env) = self.try_deliver(key) {
            self.counters.delivered += 1;
            step.delivered.push(env);
        }
        step
    }

    /// Resend this node's Echo/Ready votes matching `digest` for
    /// `key` — the answer to a replayed *or relayed* Send during
    /// anti-entropy. Relayed Sends carry the origin's envelope
    /// signature, so answering them is safe, and it means a node that
    /// missed the original exchange can still collect a quorum after
    /// the origin itself has crashed.
    fn reannounce(
        &self,
        key: (NodeId, u64),
        digest: &OpDigest,
        signer: &dyn OpSigner,
    ) -> Vec<(NodeId, Message)> {
        let Some(slot) = self.slots.get(&key) else {
            return Vec::new();
        };
        let mut payloads = Vec::new();
        if let Some(env) = &slot.our_echo {
            if env.digest() == *digest {
                payloads.push(Payload::Echo(env.clone()));
            }
        }
        if let Some(env) = &slot.our_ready {
            if env.digest() == *digest {
                payloads.push(Payload::Ready(env.clone()));
            }
        }
        let mut out = Vec::new();
        for p in payloads {
            out.extend(self.fanout(p, signer));
        }
        out
    }

    /// Phase transitions for a slot after a new vote landed: echo
    /// quorum → Ready, ready amplification → Ready.
    fn advance(&mut self, key: (NodeId, u64), signer: &dyn OpSigner) -> Vec<(NodeId, Message)> {
        let echo_q = self.membership.echo_quorum();
        let amplify = self.membership.ready_amplify();
        let Some(slot) = self.slots.get_mut(&key) else {
            return Vec::new();
        };
        if slot.our_ready.is_some() {
            return Vec::new();
        }
        let ready_for = slot
            .echoes
            .iter()
            .find(|(_, voters)| voters.len() >= echo_q)
            .or_else(|| {
                slot.readies
                    .iter()
                    .find(|(_, voters)| voters.len() >= amplify)
            })
            .map(|(digest, _)| *digest);
        let Some(digest) = ready_for else {
            return Vec::new();
        };
        let Some(env) = slot.seen.get(&digest).cloned() else {
            return Vec::new();
        };
        slot.our_ready = Some(env.clone());
        self.known_sends.entry(key).or_insert_with(|| env.clone());
        self.fanout(Payload::Ready(env), signer)
    }

    /// Deliver once `2f + 1` readies agree on one digest, then compact
    /// the slot: the vote tallies have done their job, so they (and
    /// the per-digest envelope copies) are dropped. What stays — the
    /// delivered envelope as `accepted`, plus this node's own votes —
    /// is exactly what anti-entropy re-announcement needs, and the
    /// origin's undelivered-window slot is released.
    fn try_deliver(&mut self, key: (NodeId, u64)) -> Option<OpEnvelope> {
        let quorum = self.membership.deliver_quorum();
        let slot = self.slots.get_mut(&key)?;
        if slot.delivered {
            return None;
        }
        let digest = slot
            .readies
            .iter()
            .find(|(_, voters)| voters.len() >= quorum)
            .map(|(d, _)| *d)?;
        let env = slot.seen.get(&digest)?.clone();
        slot.delivered = true;
        slot.echoes.clear();
        slot.readies.clear();
        slot.seen.clear();
        slot.accepted = Some(env.clone());
        self.known_sends.insert(key, env.clone());
        if let Some(active) = self.undelivered.get_mut(&key.0) {
            *active = active.saturating_sub(1);
        }
        Some(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orset::{Dot, LabelOp, LabelRecord};

    fn op(n: u64) -> LabelOp {
        LabelOp::Mint {
            dot: Dot::new(0, n),
            label: LabelRecord::new("alice", "CA", "ok"),
        }
    }

    fn cluster(n: usize) -> (Vec<BrbState>, Vec<SimEd25519>) {
        let signers: Vec<SimEd25519> = (0..n as NodeId)
            .map(|i| SimEd25519::from_seed(42, i))
            .collect();
        let membership = Membership::new(signers.iter().map(|s| s.public()).collect());
        let states = (0..n as NodeId)
            .map(|i| BrbState::new(i, membership.clone()))
            .collect();
        (states, signers)
    }

    /// Synchronously pump every outgoing message until quiet,
    /// returning per-node deliveries.
    fn pump(states: &mut [BrbState], signers: &[SimEd25519], first: Step) -> Vec<Vec<OpEnvelope>> {
        let mut delivered: Vec<Vec<OpEnvelope>> = vec![Vec::new(); states.len()];
        let mut queue: Vec<(NodeId, Message)> = first.outgoing;
        while let Some((to, msg)) = queue.pop() {
            let step = states[to as usize].handle(&msg, &signers[to as usize]);
            queue.extend(step.outgoing);
            delivered[to as usize].extend(step.delivered);
        }
        delivered
    }

    #[test]
    fn quorum_thresholds_match_bracha() {
        let m = Membership::new(vec![[0u8; 32]; 4]);
        assert_eq!(m.f(), 1);
        assert_eq!(m.echo_quorum(), 3);
        assert_eq!(m.ready_amplify(), 2);
        assert_eq!(m.deliver_quorum(), 3);
        let m3 = Membership::new(vec![[0u8; 32]; 3]);
        assert_eq!(m3.f(), 0);
        assert_eq!(m3.echo_quorum(), 2);
        assert_eq!(m3.deliver_quorum(), 1);
    }

    #[test]
    fn broadcast_delivers_on_every_node_exactly_once() {
        let (mut states, signers) = cluster(4);
        let first = states[0].broadcast(op(1), &signers[0]);
        let delivered = pump(&mut states, &signers, first);
        for (i, d) in delivered.iter().enumerate() {
            assert_eq!(d.len(), 1, "node {i} must deliver exactly once");
            assert_eq!(d[0].op, op(1));
        }
    }

    #[test]
    fn forged_origin_signature_is_rejected_everywhere() {
        let (mut states, signers) = cluster(4);
        // Node 3 crafts an envelope claiming origin 0 but signs it
        // with its own key.
        let env = OpEnvelope::sign(0, 0, op(9), &signers[3]);
        let msg = Message::sign(3, Payload::Send(env), &signers[3]);
        for i in 0..4usize {
            let step = states[i].handle(&msg, &signers[i]);
            assert!(step.outgoing.is_empty());
            assert!(step.delivered.is_empty());
        }
        assert!(states.iter().all(|s| s.counters().rejected_sigs == 1));
    }

    #[test]
    fn equivocating_sends_never_split_honest_nodes() {
        let (mut states, signers) = cluster(4);
        // Origin 0 equivocates on one slot: envelope A to nodes 1 and
        // 2, envelope B to nodes 2 and 3 — node 2 sees the conflict.
        let env_a = OpEnvelope::sign(0, 0, op(1), &signers[0]);
        let env_b = OpEnvelope::sign(0, 0, op(2), &signers[0]);
        let msg_a = Message::sign(0, Payload::Send(env_a), &signers[0]);
        let msg_b = Message::sign(0, Payload::Send(env_b), &signers[0]);
        let mut queue: Vec<(NodeId, Message)> = vec![
            (1, msg_a.clone()),
            (2, msg_a),
            (2, msg_b.clone()),
            (3, msg_b),
        ];
        let mut delivered: Vec<Vec<OpEnvelope>> = vec![Vec::new(); 4];
        while let Some((to, msg)) = queue.pop() {
            let step = states[to as usize].handle(&msg, &signers[to as usize]);
            queue.extend(step.outgoing);
            delivered[to as usize].extend(step.delivered);
        }
        // Honest agreement: every node that delivered slot (0,0)
        // delivered the same op.
        let mut seen = None;
        for d in &delivered {
            for env in d {
                match &seen {
                    None => seen = Some(env.op.clone()),
                    Some(prev) => assert_eq!(prev, &env.op, "honest nodes split on a slot"),
                }
            }
        }
        assert!(
            states.iter().any(|s| s.counters().equivocations > 0),
            "the conflicting Send must be observed somewhere"
        );
    }

    #[test]
    fn survivors_votes_deliver_to_a_healed_node_after_the_origin_crashes() {
        // REVIEW finding 2: origin 0 broadcasts while node 3 is
        // partitioned, then crashes for good. Totality must not
        // depend on the origin retransmitting its Send — the
        // surviving voters' anti-entropy re-announces their own
        // Echo/Ready, and node 3 assembles a quorum from those.
        let (mut states, signers) = cluster(4);
        let first = states[0].broadcast(op(1), &signers[0]);
        let mut queue: Vec<(NodeId, Message)> = first.outgoing;
        let mut delivered: Vec<Vec<OpEnvelope>> = vec![Vec::new(); 4];
        while let Some((to, msg)) = queue.pop() {
            if to == 3 {
                continue; // partitioned
            }
            let step = states[to as usize].handle(&msg, &signers[to as usize]);
            queue.extend(step.outgoing);
            delivered[to as usize].extend(step.delivered);
        }
        for (i, d) in delivered.iter().take(3).enumerate() {
            assert_eq!(d.len(), 1, "majority node {i} must deliver");
        }
        assert!(delivered[3].is_empty());
        // Origin 0 crashes: it transmits nothing more and its inbox
        // is discarded. Only survivors 1 and 2 run anti-entropy.
        for i in [1usize, 2] {
            let step = states[i].anti_entropy(&signers[i]);
            queue.extend(step.outgoing);
        }
        while let Some((to, msg)) = queue.pop() {
            if to == 0 {
                continue; // crashed
            }
            let step = states[to as usize].handle(&msg, &signers[to as usize]);
            queue.extend(step.outgoing);
            delivered[to as usize].extend(step.delivered);
        }
        assert_eq!(
            delivered[3].len(),
            1,
            "healed node must deliver from survivors' votes alone"
        );
        assert_eq!(delivered[3][0].op, op(1));
    }

    #[test]
    fn byzantine_seq_flood_is_bounded_per_origin() {
        // REVIEW finding 3: a member spraying validly-signed votes
        // for unlimited fresh seqs of its own origin must not
        // allocate unbounded slot state.
        let (mut states, signers) = cluster(4);
        let flood = 10 * SLOT_WINDOW as u64;
        for seq in 0..flood {
            let env = OpEnvelope::sign(3, seq, op(seq), &signers[3]);
            let msg = Message::sign(3, Payload::Echo(env), &signers[3]);
            let step = states[0].handle(&msg, &signers[0]);
            assert!(step.delivered.is_empty());
        }
        assert_eq!(
            states[0].slots.len(),
            SLOT_WINDOW,
            "slot state must stop growing at the per-origin window"
        );
        assert_eq!(
            states[0].counters().rejected_bounds,
            flood - SLOT_WINDOW as u64
        );
    }

    #[test]
    fn digest_spray_within_one_slot_is_bounded() {
        // One slot, many distinct self-signed envelope variants: the
        // per-slot digest cap (= n) bounds the envelope copies held.
        let (mut states, signers) = cluster(4);
        for variant in 0..32u64 {
            let env = OpEnvelope::sign(3, 0, op(variant), &signers[3]);
            let msg = Message::sign(3, Payload::Echo(env), &signers[3]);
            states[0].handle(&msg, &signers[0]);
        }
        let slot = states[0].slots.get(&(3, 0)).expect("slot exists");
        assert_eq!(slot.seen.len(), 4, "digest cap must hold at n");
        assert!(states[0].counters().rejected_bounds >= 28);
    }

    #[test]
    fn delivery_compacts_slot_tallies_and_frees_the_window() {
        let (mut states, signers) = cluster(4);
        let first = states[0].broadcast(op(1), &signers[0]);
        let delivered = pump(&mut states, &signers, first);
        assert_eq!(delivered[1].len(), 1);
        let slot = states[1].slots.get(&(0, 0)).expect("slot retained");
        assert!(slot.delivered);
        assert!(
            slot.echoes.is_empty() && slot.readies.is_empty() && slot.seen.is_empty(),
            "vote tallies must be compacted after delivery"
        );
        assert!(
            slot.accepted.is_some(),
            "re-announce still needs the envelope"
        );
        assert_eq!(states[1].undelivered.get(&0).copied().unwrap_or(0), 0);
    }

    #[test]
    fn anti_entropy_rebuilds_quorum_for_a_node_that_missed_everything() {
        let (mut states, signers) = cluster(4);
        // Broadcast while node 3 is "partitioned": discard its inbox.
        let first = states[0].broadcast(op(1), &signers[0]);
        let mut queue: Vec<(NodeId, Message)> = first.outgoing;
        let mut delivered: Vec<Vec<OpEnvelope>> = vec![Vec::new(); 4];
        while let Some((to, msg)) = queue.pop() {
            if to == 3 {
                continue;
            }
            let step = states[to as usize].handle(&msg, &signers[to as usize]);
            queue.extend(step.outgoing);
            delivered[to as usize].extend(step.delivered);
        }
        assert!(delivered[3].is_empty());
        assert_eq!(delivered[0].len(), 1, "majority side delivers");
        // Heal: everyone retransmits known sends; pump to quiet.
        for i in 0..4usize {
            let step = states[i].anti_entropy(&signers[i]);
            queue.extend(step.outgoing);
        }
        while let Some((to, msg)) = queue.pop() {
            let step = states[to as usize].handle(&msg, &signers[to as usize]);
            queue.extend(step.outgoing);
            delivered[to as usize].extend(step.delivered);
        }
        assert_eq!(delivered[3].len(), 1, "healed node must deliver");
        assert_eq!(delivered[3][0].op, op(1));
    }
}
