//! One cluster member: a full [`Nexus`] kernel plus its BRB endpoint
//! and or-set replica, glued by the delivery path.
//!
//! When the broadcast layer delivers an op, the node applies it to its
//! or-set; only *presence flips* touch the kernel. A record going
//! absent→present becomes [`Nexus::apply_remote_mint`] into the
//! subject's labelstore; present→absent becomes
//! [`Nexus::apply_remote_revoke`], which runs the full revocation
//! fence (epoch bump, decision-cache clear, pipeline quiesce) — so
//! the moment a revocation is *delivered* at this node, no stale
//! allow can complete here. The or-set's idempotence guarantees the
//! kernel sees each flip exactly once no matter how the network
//! duplicates or reorders the underlying messages.

use crate::orset::{ApplyEffect, Dot, LabelOp, LabelRecord, OrSetLabels};
use crate::wire::{BrbCounters, BrbState, Membership, Message, NodeId, OpEnvelope, SimEd25519};
use nexus_core::LabelHandle;
use nexus_kernel::Nexus;
use nexus_nal::{parse, Principal};
use nexus_obs::{MetricsRegistry, TelemetrySnapshot};
use std::collections::HashMap;
use std::sync::Arc;

/// Application-side counters (what the delivery path did to the
/// kernel), alongside the BRB protocol counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Broadcast protocol counters.
    pub brb: BrbCounters,
    /// Labels minted into this node's kernel from deliveries.
    pub applied_mints: u64,
    /// Labels revoked (with the fence) from deliveries.
    pub applied_revocations: u64,
    /// Delivered ops that could not be applied (unparsable statement,
    /// missing label) — kept at zero by every honest schedule.
    pub apply_errors: u64,
    /// Delivered ops rejected before touching the or-set because
    /// their mint dot was not bound to the envelope's origin (a
    /// Byzantine member spending another node's dot namespace).
    pub rejected_ops: u64,
}

/// A cluster member.
pub struct DistNode {
    pub(crate) signer: SimEd25519,
    pub(crate) brb: BrbState,
    pub(crate) orset: OrSetLabels,
    nexus: Arc<Nexus>,
    /// Cluster-wide subject name → this node's pid for it (spawned
    /// lazily; pids are node-local, names are the replicated key).
    subjects: HashMap<String, u64>,
    /// This node's mint counter (dot uniqueness).
    mint_counter: u64,
    /// The exact kernel handle each replicated record minted here, so
    /// a remote revocation deletes that handle — never a locally-said
    /// label that happens to share (speaker, statement) content.
    remote_handles: HashMap<LabelRecord, LabelHandle>,
    applied_mints: u64,
    applied_revocations: u64,
    apply_errors: u64,
    rejected_ops: u64,
}

impl DistNode {
    /// Wrap a booted kernel as cluster member `id`.
    pub fn new(
        id: NodeId,
        cluster_seed: u64,
        membership: Membership,
        nexus: Arc<Nexus>,
    ) -> DistNode {
        DistNode {
            signer: SimEd25519::from_seed(cluster_seed, id),
            brb: BrbState::new(id, membership),
            orset: OrSetLabels::new(),
            nexus,
            subjects: HashMap::new(),
            mint_counter: 0,
            remote_handles: HashMap::new(),
            applied_mints: 0,
            applied_revocations: 0,
            apply_errors: 0,
            rejected_ops: 0,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.brb.id()
    }

    /// The kernel.
    pub fn nexus(&self) -> &Arc<Nexus> {
        &self.nexus
    }

    /// The next unique dot for a mint originated here.
    pub fn next_dot(&mut self) -> Dot {
        self.mint_counter += 1;
        Dot::new(self.id(), self.mint_counter)
    }

    /// The local pid for a cluster-wide subject name (spawned on
    /// first use).
    pub fn subject_pid(&mut self, subject: &str) -> u64 {
        if let Some(&pid) = self.subjects.get(subject) {
            return pid;
        }
        let pid = self.nexus.spawn(subject, subject.as_bytes());
        self.subjects.insert(subject.to_string(), pid);
        pid
    }

    /// The local pid for `subject`, if one was ever spawned.
    pub fn lookup_subject(&self, subject: &str) -> Option<u64> {
        self.subjects.get(subject).copied()
    }

    /// Is `record` visibly present in this node's replica?
    pub fn contains(&self, record: &LabelRecord) -> bool {
        self.orset.contains(record)
    }

    /// The live dots this node has observed for `record`.
    pub fn observed_dots(&self, record: &LabelRecord) -> Vec<Dot> {
        self.orset.observed_dots(record)
    }

    /// The replica's canonical state digest (convergence checks).
    pub fn state_digest(&self) -> u64 {
        self.orset.state_digest()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            brb: self.brb.counters(),
            applied_mints: self.applied_mints,
            applied_revocations: self.applied_revocations,
            apply_errors: self.apply_errors,
            rejected_ops: self.rejected_ops,
        }
    }

    /// Per-node broadcast/delivery metrics, in the same snapshot form
    /// as [`Nexus::telemetry_snapshot`] (renderable as Prometheus
    /// text or JSON next to the kernel's own series).
    pub fn metrics(&self) -> TelemetrySnapshot {
        let s = self.stats();
        let mut r = MetricsRegistry::new();
        r.counter(
            "nexus_dist_brb_accepted_total",
            "broadcast messages accepted",
            s.brb.accepted,
        )
        .counter(
            "nexus_dist_brb_rejected_sigs_total",
            "broadcast messages dropped for bad signatures",
            s.brb.rejected_sigs,
        )
        .counter(
            "nexus_dist_brb_equivocations_total",
            "conflicting Sends observed for an accepted slot",
            s.brb.equivocations,
        )
        .counter(
            "nexus_dist_brb_duplicates_total",
            "redundant broadcast messages",
            s.brb.duplicates,
        )
        .counter(
            "nexus_dist_brb_delivered_total",
            "ops delivered by the broadcast layer",
            s.brb.delivered,
        )
        .counter(
            "nexus_dist_applied_mints_total",
            "labels minted from deliveries",
            s.applied_mints,
        )
        .counter(
            "nexus_dist_applied_revocations_total",
            "labels revoked (fenced) from deliveries",
            s.applied_revocations,
        )
        .counter(
            "nexus_dist_apply_errors_total",
            "delivered ops that failed to apply",
            s.apply_errors,
        )
        .counter(
            "nexus_dist_rejected_ops_total",
            "delivered ops rejected for an origin-unbound mint dot",
            s.rejected_ops,
        );
        r.finish()
    }

    /// Handle one incoming message: run the BRB state machine,
    /// validate and apply whatever it delivered, and return the
    /// messages to transmit.
    pub fn handle(&mut self, msg: &Message) -> Vec<(NodeId, Message)> {
        let step = self.brb.handle(msg, &self.signer);
        for env in &step.delivered {
            if !Self::op_origin_bound(env) {
                self.rejected_ops += 1;
                continue;
            }
            let effect = self.orset.apply(&env.op);
            self.apply_effect(&effect);
        }
        step.outgoing
    }

    /// A delivered op's *fresh mint dot* must carry the envelope
    /// origin's own actor id: a member mints only in its own dot
    /// namespace, so it can neither collide with another node's
    /// future honest mints nor spend dots in a victim's name. (A
    /// revoke's observed `dots` legitimately reference other actors'
    /// mints and are not origin-bound.) The check is a pure function
    /// of the envelope, so every honest replica rejects exactly the
    /// same delivered ops — convergence is preserved.
    fn op_origin_bound(env: &OpEnvelope) -> bool {
        match &env.op {
            LabelOp::Mint { dot, .. } | LabelOp::Transfer { dot, .. } => dot.actor == env.origin,
            LabelOp::Revoke { .. } => true,
        }
    }

    /// Apply an or-set presence change to the kernel.
    fn apply_effect(&mut self, effect: &ApplyEffect) {
        for rec in &effect.revoked {
            match self.revoke_local(rec) {
                Ok(()) => self.applied_revocations += 1,
                Err(()) => self.apply_errors += 1,
            }
        }
        for rec in &effect.minted {
            match self.mint_local(rec) {
                Ok(()) => self.applied_mints += 1,
                Err(()) => self.apply_errors += 1,
            }
        }
    }

    fn mint_local(&mut self, rec: &LabelRecord) -> Result<(), ()> {
        let statement = parse(&rec.statement).map_err(|_| ())?;
        let pid = self.subject_pid(&rec.subject);
        let handle = self
            .nexus
            .apply_remote_mint(pid, Principal::name(&rec.speaker), statement)
            .map_err(|_| ())?;
        self.remote_handles.insert(rec.clone(), handle);
        Ok(())
    }

    fn revoke_local(&mut self, rec: &LabelRecord) -> Result<(), ()> {
        let pid = self.lookup_subject(&rec.subject).ok_or(())?;
        // Revoke the exact handle the replication layer minted. The
        // content-resolution fallback (`find_label`) only runs if the
        // record somehow isn't tracked; it can conflate a replicated
        // label with an identically-worded locally-said one, which is
        // why the map is authoritative.
        let handle = match self.remote_handles.get(rec) {
            Some(&h) => h,
            None => {
                let statement = parse(&rec.statement).map_err(|_| ())?;
                let speaker = Principal::name(&rec.speaker);
                self.nexus
                    .find_label(pid, &speaker, &statement)
                    .map_err(|_| ())?
                    .ok_or(())?
            }
        };
        self.nexus
            .apply_remote_revoke(pid, handle)
            .map_err(|_| ())?;
        self.remote_handles.remove(rec);
        Ok(())
    }
}
