//! Distributed Nexus: credential/label state replicated across an
//! in-process cluster of [`nexus_kernel::Nexus`] kernels.
//!
//! The paper's logical attestation model assumes every node evaluates
//! authorization against a consistent credential set. This crate
//! supplies that consistency for a cluster: label mint, transfer, and
//! revocation become **broadcast operations**, agreed through a
//! Bracha-style Byzantine reliable broadcast ([`wire`]) and merged
//! into each replica as an observed-remove set CRDT ([`orset`]). The
//! split mirrors BRB's membership/data-type layering: the broadcast
//! layer owns *who said what, exactly once per slot*; the or-set owns
//! *what the agreed set of statements is*, commutatively and
//! idempotently, so replicas converge under any delivery schedule.
//!
//! Revocation is the load-bearing case. When a revocation op is
//! delivered at a node, the [`node`] layer applies it through
//! [`nexus_kernel::Nexus::apply_remote_revoke`], which runs the full
//! revocation fence — label-removal epoch bump, decision-cache clear,
//! pipeline quiesce. That extends the single-kernel no-stale-allow
//! invariant across the cluster: after delivery at node N, no
//! authorization on N can return an allow backed by the revoked
//! credential. (Between the origin's broadcast and delivery at N,
//! N still answers from its own replica — that window is what
//! `reproduce fig11` measures as cross-node revocation latency.)
//!
//! All transport nondeterminism lives in [`sim`]: a seeded in-process
//! network with drop/duplicate/delay/partition schedules and hooks
//! for injecting Byzantine traffic. Every test failure prints its
//! seed; every interleaving replays from it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod node;
pub mod orset;
pub mod sim;
pub mod wire;

pub use cluster::Cluster;
pub use node::{DistNode, NodeStats};
pub use orset::{ApplyEffect, Dot, LabelOp, LabelRecord, OrSetLabels};
pub use sim::{NetCounters, Partition, SimConfig, SimNet};
pub use wire::{
    BrbCounters, BrbState, Membership, Message, NodeId, OpEnvelope, OpSigner, Payload, SimEd25519,
};
