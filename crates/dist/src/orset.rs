//! The replicated label state: an observed-remove set (or-set) CRDT.
//!
//! Each replica holds the same value — a set of [`LabelRecord`]s, the
//! credential/label statements the cluster has agreed on — and applies
//! the same operations, possibly in different orders, possibly more
//! than once. The or-set discharges the strong-eventual-consistency
//! obligations (Gomes et al.): `apply` is **commutative** and
//! **idempotent** over any delivery schedule, so two replicas that
//! have applied the same *set* of operations hold identical state, no
//! matter the interleaving, duplication, or reordering.
//!
//! Mechanics: every mint tags the label with a globally unique [`Dot`]
//! (origin node, per-origin counter). A revocation removes the dots it
//! has *observed* — a concurrent mint carrying a dot the revoker never
//! saw survives, which is exactly or-set add-wins semantics. Removed
//! dots land in a tombstone set so a duplicated or late-arriving mint
//! of an already-revoked dot can never resurrect the label.
//!
//! Tombstones are keyed by `(label, dot)`, not by dot alone. Honest
//! nodes never reuse a dot, but a Byzantine member can sign two mints
//! of *different* labels sharing one dot; if tombstones were global
//! per dot, revoking one label would suppress the other label's mint
//! on replicas that saw the revoke first and not on replicas that saw
//! the mint first — permanent divergence. Keyed tombstones make a
//! revoke touch only mints of the same record, so `apply` stays
//! commutative even under adversarial dot sharing.

use std::collections::{BTreeMap, BTreeSet};

/// One replica's globally unique tag for a mint: (origin node,
/// per-origin counter). Dots are never reused, so the tombstone set
/// is a permanent record of revoked mints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dot {
    /// The node that minted.
    pub actor: u32,
    /// That node's mint counter.
    pub counter: u64,
}

impl Dot {
    /// Construct a dot.
    pub fn new(actor: u32, counter: u64) -> Dot {
        Dot { actor, counter }
    }
}

/// The replicated content of one label: which subject holds it, who
/// spoke it, and what was said. Speaker and statement travel as NAL
/// concrete syntax (the same encoding certificates use) and are parsed
/// only at the labelstore boundary.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelRecord {
    /// The subject (process name, cluster-wide) holding the label.
    pub subject: String,
    /// The speaker principal, NAL concrete syntax.
    pub speaker: String,
    /// The statement, NAL concrete syntax.
    pub statement: String,
}

impl LabelRecord {
    /// Construct a record.
    pub fn new(subject: &str, speaker: &str, statement: &str) -> LabelRecord {
        LabelRecord {
            subject: subject.to_string(),
            speaker: speaker.to_string(),
            statement: statement.to_string(),
        }
    }
}

/// One replicated label operation, as agreed through the broadcast
/// layer. Mint adds a uniquely-dotted element; Revoke removes the
/// observed dots; Transfer is revoke-at-`from` + mint-at-`to` applied
/// atomically in one delivery (so no replica ever observes the
/// credential on both subjects... or neither, split across ops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelOp {
    /// Add `label`, tagged `dot`.
    Mint {
        /// The unique mint tag.
        dot: Dot,
        /// The label content.
        label: LabelRecord,
    },
    /// Remove the observed `dots` of `label`.
    Revoke {
        /// The label content being revoked.
        label: LabelRecord,
        /// The mint dots the revoker observed.
        dots: Vec<Dot>,
    },
    /// Revoke `label`'s observed `dots` and mint the same
    /// speaker/statement for `to_subject` under `dot`.
    Transfer {
        /// The label content leaving its current subject.
        label: LabelRecord,
        /// The mint dots the transferring node observed.
        dots: Vec<Dot>,
        /// The receiving subject.
        to_subject: String,
        /// The fresh mint tag for the receiving side.
        dot: Dot,
    },
}

/// How applying one delivered operation changed a replica's visible
/// label set. `minted` lists records that went absent→present;
/// `revoked` lists records that went present→absent. Records whose
/// presence did not flip (duplicate delivery, revocation of an
/// already-dead dot) appear in neither.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ApplyEffect {
    /// Records that became present.
    pub minted: Vec<LabelRecord>,
    /// Records that became absent.
    pub revoked: Vec<LabelRecord>,
}

impl ApplyEffect {
    /// Did the operation change visible state at all?
    pub fn is_noop(&self) -> bool {
        self.minted.is_empty() && self.revoked.is_empty()
    }
}

/// The or-set replica state. `BTreeMap`/`BTreeSet` keep iteration
/// deterministic, so state digests and convergence comparisons are
/// stable across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OrSetLabels {
    /// Live dots per label content.
    live: BTreeMap<LabelRecord, BTreeSet<Dot>>,
    /// Revoked dots, keyed by the record they were revoked under — a
    /// revoke can only ever suppress mints of the *same* record.
    tombstones: BTreeMap<LabelRecord, BTreeSet<Dot>>,
}

impl OrSetLabels {
    /// Empty replica.
    pub fn new() -> OrSetLabels {
        OrSetLabels::default()
    }

    /// Apply one delivered operation. Idempotent and commutative: any
    /// permutation (with duplicates) of the same operation set yields
    /// the same state.
    pub fn apply(&mut self, op: &LabelOp) -> ApplyEffect {
        let mut effect = ApplyEffect::default();
        match op {
            LabelOp::Mint { dot, label } => {
                self.add(*dot, label, &mut effect);
            }
            LabelOp::Revoke { label, dots } => {
                self.remove(label, dots, &mut effect);
            }
            LabelOp::Transfer {
                label,
                dots,
                to_subject,
                dot,
            } => {
                self.remove(label, dots, &mut effect);
                let target = LabelRecord {
                    subject: to_subject.clone(),
                    speaker: label.speaker.clone(),
                    statement: label.statement.clone(),
                };
                self.add(*dot, &target, &mut effect);
            }
        }
        effect
    }

    fn add(&mut self, dot: Dot, label: &LabelRecord, effect: &mut ApplyEffect) {
        if self.tombstones.get(label).is_some_and(|t| t.contains(&dot)) {
            return; // the revocation arrived first — add loses
        }
        let dots = self.live.entry(label.clone()).or_default();
        let was_present = !dots.is_empty();
        if dots.insert(dot) && !was_present {
            effect.minted.push(label.clone());
        }
    }

    fn remove(&mut self, label: &LabelRecord, dots: &[Dot], effect: &mut ApplyEffect) {
        if dots.is_empty() {
            return; // a dotless revoke observed nothing — no state
        }
        self.tombstones
            .entry(label.clone())
            .or_default()
            .extend(dots.iter().copied());
        if let Some(live) = self.live.get_mut(label) {
            let was_present = !live.is_empty();
            for d in dots {
                live.remove(d);
            }
            if was_present && live.is_empty() {
                effect.revoked.push(label.clone());
            }
        }
        // An empty live set stays in the map deliberately: removing the
        // entry or keeping it is invisible to `contains`/`records`, and
        // keeping it makes `apply` order-insensitive bookkeeping-free.
    }

    /// Is `label` visibly present (≥ 1 live dot)?
    pub fn contains(&self, label: &LabelRecord) -> bool {
        self.live.get(label).is_some_and(|d| !d.is_empty())
    }

    /// The live dots of `label` — what a revocation at this replica
    /// observes.
    pub fn observed_dots(&self, label: &LabelRecord) -> Vec<Dot> {
        self.live
            .get(label)
            .map(|d| d.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All visibly present records, deterministically ordered.
    pub fn records(&self) -> Vec<LabelRecord> {
        self.live
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(r, _)| r.clone())
            .collect()
    }

    /// A canonical digest of the visible state (records + live dots +
    /// tombstones), for convergence assertions and per-node telemetry.
    pub fn state_digest(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for (r, dots) in &self.live {
            if dots.is_empty() {
                continue;
            }
            r.hash(&mut h);
            for d in dots {
                d.hash(&mut h);
            }
        }
        for (r, dots) in &self.tombstones {
            r.hash(&mut h);
            for d in dots {
                d.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Two replicas agree when their visible records and live dots
    /// match and they have tombstoned the same mints.
    pub fn agrees_with(&self, other: &OrSetLabels) -> bool {
        self.tombstones == other.tombstones
            && self
                .live
                .iter()
                .filter(|(_, d)| !d.is_empty())
                .eq(other.live.iter().filter(|(_, d)| !d.is_empty()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(s: &str) -> LabelRecord {
        LabelRecord::new(s, "CA", "ok")
    }

    #[test]
    fn mint_then_revoke_is_absent_in_both_orders() {
        let mint = LabelOp::Mint {
            dot: Dot::new(0, 1),
            label: rec("alice"),
        };
        let revoke = LabelOp::Revoke {
            label: rec("alice"),
            dots: vec![Dot::new(0, 1)],
        };
        let mut fwd = OrSetLabels::new();
        fwd.apply(&mint);
        fwd.apply(&revoke);
        let mut rev = OrSetLabels::new();
        rev.apply(&revoke);
        rev.apply(&mint);
        assert!(!fwd.contains(&rec("alice")));
        assert!(!rev.contains(&rec("alice")));
        assert!(fwd.agrees_with(&rev));
        assert_eq!(fwd.state_digest(), rev.state_digest());
    }

    #[test]
    fn concurrent_unobserved_mint_survives_revocation() {
        // Add-wins: the revoker only observed dot (0,1); the
        // concurrent mint (1,1) survives on every replica.
        let mut a = OrSetLabels::new();
        a.apply(&LabelOp::Mint {
            dot: Dot::new(0, 1),
            label: rec("alice"),
        });
        a.apply(&LabelOp::Revoke {
            label: rec("alice"),
            dots: vec![Dot::new(0, 1)],
        });
        a.apply(&LabelOp::Mint {
            dot: Dot::new(1, 1),
            label: rec("alice"),
        });
        assert!(a.contains(&rec("alice")));
        assert_eq!(a.observed_dots(&rec("alice")), vec![Dot::new(1, 1)]);
    }

    #[test]
    fn apply_is_idempotent_and_reports_effect_once() {
        let mut a = OrSetLabels::new();
        let mint = LabelOp::Mint {
            dot: Dot::new(2, 7),
            label: rec("bob"),
        };
        let e1 = a.apply(&mint);
        assert_eq!(e1.minted, vec![rec("bob")]);
        let e2 = a.apply(&mint);
        assert!(e2.is_noop(), "duplicate delivery must not re-mint");
        let digest = a.state_digest();
        a.apply(&mint);
        assert_eq!(a.state_digest(), digest);
    }

    #[test]
    fn transfer_moves_subject_atomically() {
        let mut a = OrSetLabels::new();
        a.apply(&LabelOp::Mint {
            dot: Dot::new(0, 1),
            label: rec("alice"),
        });
        let eff = a.apply(&LabelOp::Transfer {
            label: rec("alice"),
            dots: vec![Dot::new(0, 1)],
            to_subject: "bob".into(),
            dot: Dot::new(0, 2),
        });
        assert_eq!(eff.revoked, vec![rec("alice")]);
        assert_eq!(eff.minted, vec![rec("bob")]);
        assert!(!a.contains(&rec("alice")));
        assert!(a.contains(&rec("bob")));
    }

    #[test]
    fn shared_dot_revoke_cannot_suppress_an_unrelated_label() {
        // A Byzantine member signs two mints of *different* labels
        // sharing one dot, then a revoke of one of them. With keyed
        // tombstones the revoke only touches its own record, so every
        // delivery order converges to the same state: alice absent,
        // mallory present.
        let mint_a = LabelOp::Mint {
            dot: Dot::new(3, 1),
            label: rec("alice"),
        };
        let mint_b = LabelOp::Mint {
            dot: Dot::new(3, 1), // same dot, different label
            label: rec("mallory"),
        };
        let revoke_a = LabelOp::Revoke {
            label: rec("alice"),
            dots: vec![Dot::new(3, 1)],
        };
        let ops = [mint_a, mint_b, revoke_a];
        let orders: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let mut replicas: Vec<OrSetLabels> = orders
            .iter()
            .map(|order| {
                let mut r = OrSetLabels::new();
                for &i in order {
                    r.apply(&ops[i]);
                }
                r
            })
            .collect();
        let reference = replicas.pop().unwrap();
        for r in &replicas {
            assert!(r.agrees_with(&reference), "delivery order diverged");
            assert_eq!(r.state_digest(), reference.state_digest());
            assert!(!r.contains(&rec("alice")), "revoked label must die");
            assert!(
                r.contains(&rec("mallory")),
                "unrelated label sharing the dot must survive"
            );
        }
    }

    #[test]
    fn dotless_revoke_leaves_no_state_and_stays_convergent() {
        let mut a = OrSetLabels::new();
        let eff = a.apply(&LabelOp::Revoke {
            label: rec("alice"),
            dots: vec![],
        });
        assert!(eff.is_noop());
        assert!(a.agrees_with(&OrSetLabels::new()));
        assert_eq!(a.state_digest(), OrSetLabels::new().state_digest());
    }

    #[test]
    fn second_dot_keeps_label_present_through_partial_revoke() {
        let mut a = OrSetLabels::new();
        a.apply(&LabelOp::Mint {
            dot: Dot::new(0, 1),
            label: rec("alice"),
        });
        a.apply(&LabelOp::Mint {
            dot: Dot::new(1, 1),
            label: rec("alice"),
        });
        let eff = a.apply(&LabelOp::Revoke {
            label: rec("alice"),
            dots: vec![Dot::new(0, 1)],
        });
        assert!(eff.is_noop(), "presence did not flip — one dot remains");
        assert!(a.contains(&rec("alice")));
    }
}
