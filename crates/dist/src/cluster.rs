//! An in-process cluster: `n` booted kernels, their BRB endpoints,
//! and the seeded network simulator, driven to quiescence step by
//! step. This is the harness every distributed test and the fig11
//! benchmark build on — all nondeterminism lives in the simulator's
//! seed, so any failing schedule replays from one `u64`.

use crate::node::DistNode;
use crate::orset::{Dot, LabelOp, LabelRecord};
use crate::sim::{NetCounters, SimConfig, SimNet};
use crate::wire::{Membership, Message, NodeId, OpEnvelope, OpSigner, Payload, SimEd25519};
use nexus_core::ResourceId;
use nexus_kernel::{BootImages, Nexus, NexusConfig};
use nexus_nal::parse;
use nexus_storage::RamDisk;
use nexus_tpm::Tpm;
use std::sync::Arc;

/// A cluster of replicated Nexus kernels over a simulated network.
pub struct Cluster {
    nodes: Vec<DistNode>,
    net: SimNet,
    seed: u64,
}

impl Cluster {
    /// Boot `n` kernels over a perfect (random-order) network.
    pub fn new(n: usize, seed: u64) -> Cluster {
        Cluster::with_config(n, SimConfig::perfect(seed))
    }

    /// Boot `n` kernels over a network with the given fault schedule.
    /// Each kernel gets its own TPM (distinct seeds) and disk; node
    /// keys derive from the schedule seed, so the whole cluster is a
    /// function of `(n, cfg)`.
    pub fn with_config(n: usize, cfg: SimConfig) -> Cluster {
        assert!(n >= 1, "a cluster needs at least one node");
        let seed = cfg.seed;
        let signers: Vec<SimEd25519> = (0..n as NodeId)
            .map(|i| SimEd25519::from_seed(seed, i))
            .collect();
        let membership = Membership::new(signers.iter().map(|s| s.public()).collect());
        let nodes = (0..n as NodeId)
            .map(|i| {
                let nexus = Nexus::boot(
                    Tpm::new_with_seed(0xd157_0000 ^ seed ^ i as u64),
                    RamDisk::new(),
                    &BootImages::standard(),
                    NexusConfig::default(),
                )
                .expect("cluster node boot");
                DistNode::new(i, seed, membership.clone(), Arc::new(nexus))
            })
            .collect();
        Cluster {
            nodes,
            net: SimNet::new(cfg),
            seed,
        }
    }

    /// The schedule seed (print on failure; replays the run).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Cluster size.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty (never — `new` asserts — but clippy insists
    /// `len` has a partner).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A node.
    pub fn node(&self, i: NodeId) -> &DistNode {
        &self.nodes[i as usize]
    }

    /// A node, mutably.
    pub fn node_mut(&mut self, i: NodeId) -> &mut DistNode {
        &mut self.nodes[i as usize]
    }

    /// Node `i`'s kernel.
    pub fn nexus(&self, i: NodeId) -> Arc<Nexus> {
        Arc::clone(self.node(i).nexus())
    }

    /// Transport counters.
    pub fn net_counters(&self) -> NetCounters {
        self.net.counters()
    }

    fn route(&mut self, from: NodeId, outgoing: Vec<(NodeId, Message)>) {
        for (to, msg) in outgoing {
            self.net.send(from, to, msg);
        }
    }

    // ---- originating ops ----

    /// Broadcast a mint of `speaker says statement` for `subject`,
    /// originated at `node`. Returns the record being replicated; it
    /// appears on each node only once delivery quorum is reached
    /// there (the origin included — no node trusts its own op early).
    pub fn mint(
        &mut self,
        node: NodeId,
        subject: &str,
        speaker: &str,
        statement: &str,
    ) -> LabelRecord {
        let record = LabelRecord::new(subject, speaker, statement);
        let dot = self.node_mut(node).next_dot();
        let op = LabelOp::Mint {
            dot,
            label: record.clone(),
        };
        let n = &mut self.nodes[node as usize];
        let step = n.brb.broadcast(op, &n.signer);
        self.route(node, step.outgoing);
        record
    }

    /// Broadcast a revocation of `record`, revoking the dots `node`
    /// has observed. Returns false (and sends nothing) if the record
    /// is not visible at `node`.
    pub fn revoke(&mut self, node: NodeId, record: &LabelRecord) -> bool {
        let dots = self.node(node).observed_dots(record);
        if dots.is_empty() {
            return false;
        }
        let op = LabelOp::Revoke {
            label: record.clone(),
            dots,
        };
        let n = &mut self.nodes[node as usize];
        let step = n.brb.broadcast(op, &n.signer);
        self.route(node, step.outgoing);
        true
    }

    /// Broadcast an atomic transfer of `record` to `to_subject`.
    /// Returns the destination record, or `None` if `record` is not
    /// visible at `node`.
    pub fn transfer(
        &mut self,
        node: NodeId,
        record: &LabelRecord,
        to_subject: &str,
    ) -> Option<LabelRecord> {
        let dots = self.node(node).observed_dots(record);
        if dots.is_empty() {
            return None;
        }
        let dot = self.node_mut(node).next_dot();
        let op = LabelOp::Transfer {
            label: record.clone(),
            dots,
            to_subject: to_subject.to_string(),
            dot,
        };
        let n = &mut self.nodes[node as usize];
        let step = n.brb.broadcast(op, &n.signer);
        self.route(node, step.outgoing);
        Some(LabelRecord::new(
            to_subject,
            &record.speaker,
            &record.statement,
        ))
    }

    // ---- driving the network ----

    /// Deliver one message (random eligible flight). Returns false
    /// when nothing is in flight.
    pub fn step(&mut self) -> bool {
        match self.net.step() {
            Some((to, msg)) => {
                let outgoing = self.nodes[to as usize].handle(&msg);
                self.route(to, outgoing);
                true
            }
            None => false,
        }
    }

    /// Drive until no messages are in flight (or `max_steps` runs
    /// out). Returns the number of deliveries made.
    pub fn run_to_quiescence(&mut self, max_steps: usize) -> usize {
        let mut steps = 0;
        while steps < max_steps && self.step() {
            steps += 1;
        }
        steps
    }

    /// Every node retransmits its known Sends (the anti-entropy pass
    /// run after a partition heals).
    pub fn anti_entropy(&mut self) {
        for i in 0..self.nodes.len() {
            let n = &mut self.nodes[i];
            let step = n.brb.anti_entropy(&n.signer);
            self.route(i as NodeId, step.outgoing);
        }
    }

    /// Do all replicas agree (pairwise or-set agreement)?
    pub fn converged(&self) -> bool {
        self.nodes
            .windows(2)
            .all(|w| w[0].orset.agrees_with(&w[1].orset))
    }

    /// Drive to quiescence, then run anti-entropy rounds until the
    /// replicas converge (or `max_rounds` runs out). Returns true on
    /// convergence.
    pub fn run_until_converged(&mut self, max_rounds: usize) -> bool {
        for _ in 0..max_rounds {
            self.run_to_quiescence(usize::MAX);
            if self.converged() {
                return true;
            }
            self.anti_entropy();
        }
        self.run_to_quiescence(usize::MAX);
        self.converged()
    }

    /// Is `record` visible at node `i`?
    pub fn has_label(&self, i: NodeId, record: &LabelRecord) -> bool {
        self.node(i).contains(record)
    }

    // ---- per-node authorization config ----
    //
    // Goals and ownership are node-local configuration (only
    // credentials replicate), so tests install them on every node.

    /// On every node: install `goal` (NAL concrete syntax) for
    /// (`op`, `object`) via an owning admin process — the normal
    /// grant-ownership → setgoal path.
    pub fn install_goal(&mut self, object: &ResourceId, op: &str, goal: &str) {
        let formula = parse(goal).expect("goal parses");
        for node in &mut self.nodes {
            let admin = node.subject_pid("goal-admin");
            let nexus = Arc::clone(node.nexus());
            nexus
                .grant_ownership(admin, object)
                .expect("grant ownership");
            nexus
                .sys_setgoal(admin, object.clone(), op, formula.clone())
                .expect("setgoal");
        }
    }

    /// Authorize `subject` for (`op`, `object`) at node `i` — the
    /// replicated analog of a local `authorize` call. Subjects that
    /// have never appeared at this node hold no credentials and are
    /// denied.
    pub fn authorize(&mut self, i: NodeId, subject: &str, op: &str, object: &ResourceId) -> bool {
        let pid = self.node_mut(i).subject_pid(subject);
        self.nexus(i).authorize(pid, op, object).unwrap_or(false)
    }

    // ---- Byzantine injection ----
    //
    // These craft raw messages with a member's real key (a compromised
    // insider, the strongest position short of breaking crypto) and
    // push them straight into the network, bypassing the node's own
    // state machine.

    /// `byz` equivocates: envelope A goes to the first half of the
    /// cluster, a conflicting envelope B (same slot) to the rest.
    /// Returns the two conflicting records.
    pub fn inject_equivocation(
        &mut self,
        byz: NodeId,
        seq: u64,
        subject_a: &str,
        subject_b: &str,
    ) -> (LabelRecord, LabelRecord) {
        let rec_a = LabelRecord::new(subject_a, "CA", "ok");
        let rec_b = LabelRecord::new(subject_b, "CA", "ok");
        let signer = &self.nodes[byz as usize].signer;
        let env_a = OpEnvelope::sign(
            byz,
            seq,
            LabelOp::Mint {
                dot: Dot::new(byz, u64::MAX - seq),
                label: rec_a.clone(),
            },
            signer,
        );
        let env_b = OpEnvelope::sign(
            byz,
            seq,
            LabelOp::Mint {
                dot: Dot::new(byz, u64::MAX - seq),
                label: rec_b.clone(),
            },
            signer,
        );
        let msg_a = Message::sign(byz, Payload::Send(env_a), signer);
        let msg_b = Message::sign(byz, Payload::Send(env_b), signer);
        // Overlapping halves: node `half` receives both conflicting
        // Sends and witnesses the equivocation directly; the others
        // see only one side and must still stay in agreement.
        let half = self.nodes.len() / 2;
        for to in 0..self.nodes.len() as NodeId {
            if to as usize <= half {
                self.net.send(byz, to, msg_a.clone());
            }
            if to as usize >= half {
                self.net.send(byz, to, msg_b.clone());
            }
        }
        (rec_a, rec_b)
    }

    /// `byz` forges: a Send claiming `victim` as origin, signed with
    /// `byz`'s key (it does not hold the victim's). Honest nodes must
    /// reject it outright.
    pub fn inject_forged(&mut self, byz: NodeId, victim: NodeId, subject: &str) -> LabelRecord {
        let rec = LabelRecord::new(subject, "CA", "ok");
        let signer = &self.nodes[byz as usize].signer;
        let env = OpEnvelope::sign(
            victim,
            u64::MAX,
            LabelOp::Mint {
                dot: Dot::new(victim, u64::MAX),
                label: rec.clone(),
            },
            signer,
        );
        let msg = Message::sign(byz, Payload::Send(env), signer);
        for to in 0..self.nodes.len() as NodeId {
            self.net.send(byz, to, msg.clone());
        }
        rec
    }

    /// `byz` mounts the shared-dot attack (REVIEW finding 1): two
    /// validly-signed mints of *different* labels sharing one dot
    /// (its own actor id) in two slots, plus a revocation of the
    /// first label's dot in a third — all in flight at once, so
    /// replicas apply them in schedule-dependent orders. With
    /// `(label, dot)`-keyed tombstones every order converges: the
    /// revoked label dies, the dot-sharing label survives everywhere.
    /// Returns (revoked record, surviving record).
    pub fn inject_shared_dot_attack(
        &mut self,
        byz: NodeId,
        subject_a: &str,
        subject_b: &str,
    ) -> (LabelRecord, LabelRecord) {
        let rec_a = LabelRecord::new(subject_a, "CA", "ok");
        let rec_b = LabelRecord::new(subject_b, "CA", "ok");
        let dot = self.node_mut(byz).next_dot();
        let ops = [
            LabelOp::Mint {
                dot,
                label: rec_a.clone(),
            },
            LabelOp::Mint {
                dot,
                label: rec_b.clone(),
            },
            LabelOp::Revoke {
                label: rec_a.clone(),
                dots: vec![dot],
            },
        ];
        for op in ops {
            let n = &mut self.nodes[byz as usize];
            let step = n.brb.broadcast(op, &n.signer);
            self.route(byz, step.outgoing);
        }
        (rec_a, rec_b)
    }

    /// `byz` broadcasts a validly-signed mint whose dot sits in
    /// `victim`'s actor namespace (pre-colliding with the victim's
    /// future honest mint counter `counter`). The broadcast layer
    /// delivers it — the envelope is genuine — but every honest node
    /// must reject it at the application layer (origin-unbound dot).
    pub fn inject_foreign_dot_mint(
        &mut self,
        byz: NodeId,
        victim: NodeId,
        counter: u64,
        subject: &str,
    ) -> LabelRecord {
        let rec = LabelRecord::new(subject, "CA", "ok");
        let op = LabelOp::Mint {
            dot: Dot::new(victim, counter),
            label: rec.clone(),
        };
        let n = &mut self.nodes[byz as usize];
        let step = n.brb.broadcast(op, &n.signer);
        self.route(byz, step.outgoing);
        rec
    }

    /// Drop node `crashed` from the cluster's anti-entropy loop and
    /// retransmit from everyone else — models a crashed origin whose
    /// Send can never be replayed by itself. Totality must not depend
    /// on it: surviving voters re-announce their own Echo/Ready.
    pub fn anti_entropy_without(&mut self, crashed: NodeId) {
        for i in 0..self.nodes.len() {
            if i as NodeId == crashed {
                continue;
            }
            let n = &mut self.nodes[i];
            let step = n.brb.anti_entropy(&n.signer);
            self.route(i as NodeId, step.outgoing);
        }
    }

    /// `byz` replays every Send it knows, `copies` times (a replay
    /// storm). Honest or-sets are idempotent, so state must not move.
    pub fn inject_replay(&mut self, byz: NodeId, copies: usize) {
        for _ in 0..copies {
            let n = &mut self.nodes[byz as usize];
            let step = n.brb.anti_entropy(&n.signer);
            self.route(byz, step.outgoing);
        }
    }
}
