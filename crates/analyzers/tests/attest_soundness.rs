//! Soundness sabotage tests for the attestation analyzer (ISSUE 8):
//! no IR with a reachable panic (or an unguarded unsafe input) may
//! ever yield the corresponding credential. The analyzer is allowed to
//! refuse clean images (conservatism is fine); it is never allowed to
//! mint over a dirty one.

use nexus_analyzers::attest::{analyze, AnalysisConfig, AttestAnalyzer, Claim};
use nexus_analyzers::bin::{BinaryImage, BlockId, FuncId, Inst, Terminator, ValueId};
use nexus_kernel::{BootImages, Nexus, NexusConfig};
use nexus_storage::RamDisk;
use nexus_tpm::Tpm;

fn boot() -> Nexus {
    Nexus::boot(
        Tpm::new_with_seed(0x50_0d),
        RamDisk::new(),
        &BootImages::standard(),
        NexusConfig::default(),
    )
    .expect("boot")
}

fn cfg() -> AnalysisConfig {
    AnalysisConfig::default()
}

/// A panic reachable only *through* an indirect call: the function
/// holding the panic is never a direct call target, but an indirect
/// call could reach it. The analyzer cannot know the target set, so it
/// must refuse.
#[test]
fn panic_only_via_indirect_call_refuses() {
    let mut img = BinaryImage::new("indirect");
    let main = img.add_func("main");
    img.add_entry(main);
    img.push(main, BlockId(0), Inst::CallIndirect);
    // Only reachable through the indirect call.
    let evil = img.add_func("evil");
    img.push(evil, BlockId(0), Inst::Panic);
    let r = analyze(&img, &cfg());
    assert!(!r.panic_free, "indirect call must refuse panic_free");
    assert!(
        r.panic_witness.as_deref().unwrap().contains("indirect"),
        "witness must name the indirect call: {:?}",
        r.panic_witness
    );
    // The address-taken approximation also drags `evil` into the
    // unsafe pass's coverage set (it is clean here, so no_unsafe may
    // still hold).
    assert!(r.no_unsafe);
}

/// Panic in dead code may mint — all the way through the kernel path:
/// the credential lands in the subject's labelstore.
#[test]
fn dead_code_panic_mints_through_kernel() {
    let nexus = boot();
    let analyzer = AttestAnalyzer::launch(&nexus).expect("launch");
    let mut img = BinaryImage::new("deadcode");
    let main = img.add_func("main");
    img.add_entry(main);
    img.push(main, BlockId(0), Inst::Compute(ValueId(0)));
    let dead = img.add_block(main); // no terminator reaches it
    img.push(main, dead, Inst::Panic);
    let subject = nexus.spawn("subject", b"img");
    let att = analyzer
        .attest_binary(&nexus, subject, &img)
        .expect("attest");
    assert!(att.holds(Claim::PanicFree), "{:?}", att.refused);
    let subject_prin = nexus.principal(subject).unwrap();
    let want = analyzer
        .credential(Claim::PanicFree, &subject_prin)
        .to_string();
    assert!(
        nexus
            .labels_of(subject)
            .unwrap()
            .iter()
            .any(|l| l.to_string() == want),
        "minted credential must be in the labelstore"
    );
}

/// Unsafe guarded on one of two paths: the join point is not
/// must-guarded, so `no_unsafe` must be refused — and the refusal must
/// keep the credential out of the labelstore.
#[test]
fn unsafe_guarded_on_one_path_refuses_through_kernel() {
    let nexus = boot();
    let analyzer = AttestAnalyzer::launch(&nexus).expect("launch");
    let mut img = BinaryImage::new("half-guarded");
    let main = img.add_func("main");
    img.add_entry(main);
    let (a, b, join) = (
        img.add_block(main),
        img.add_block(main),
        img.add_block(main),
    );
    img.push(main, BlockId(0), Inst::Compute(ValueId(7)));
    img.set_term(main, BlockId(0), Terminator::Branch(a, b));
    img.push(main, a, Inst::Guard(ValueId(7)));
    img.set_term(main, a, Terminator::Jump(join));
    // Arm `b` skips the guard entirely.
    img.set_term(main, b, Terminator::Jump(join));
    img.push(
        main,
        join,
        Inst::Unsafe {
            region: "deref".into(),
            inputs: vec![ValueId(7)],
        },
    );
    let subject = nexus.spawn("subject", b"img");
    let att = analyzer
        .attest_binary(&nexus, subject, &img)
        .expect("attest");
    assert!(att.holds(Claim::PanicFree));
    assert!(!att.holds(Claim::NoUnsafe));
    assert!(
        att.refusal(Claim::NoUnsafe).unwrap().contains("deref"),
        "witness must name the unsafe region"
    );
    let subject_prin = nexus.principal(subject).unwrap();
    let not_wanted = analyzer
        .credential(Claim::NoUnsafe, &subject_prin)
        .to_string();
    assert!(
        !nexus
            .labels_of(subject)
            .unwrap()
            .iter()
            .any(|l| l.to_string() == not_wanted),
        "refused credential must not be in the labelstore"
    );
}

// ---- randomized sabotage sweep -----------------------------------

/// Deterministic LCG (no external randomness in tests).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random well-formed image: a handful of functions with random
/// block graphs, computes/guards/unsafe regions, and direct calls.
fn random_image(rng: &mut Lcg) -> BinaryImage {
    let mut img = BinaryImage::new("random");
    let nfuncs = 2 + rng.below(4) as usize;
    let funcs: Vec<FuncId> = (0..nfuncs)
        .map(|i| img.add_func(&format!("f{i}")))
        .collect();
    img.add_entry(funcs[0]);
    for (fi, f) in funcs.iter().enumerate() {
        let extra = rng.below(3) as usize;
        let blocks: Vec<BlockId> = std::iter::once(BlockId(0))
            .chain((0..extra).map(|_| img.add_block(*f)))
            .collect();
        for b in &blocks {
            for _ in 0..rng.below(4) {
                let inst = match rng.below(10) {
                    0..=3 => Inst::Compute(ValueId(rng.below(4) as u32)),
                    4..=6 => Inst::Guard(ValueId(rng.below(4) as u32)),
                    7..=8 => Inst::Unsafe {
                        region: "r".into(),
                        inputs: vec![ValueId(rng.below(4) as u32)],
                    },
                    // Call a random function (cycles allowed).
                    _ => Inst::Call(funcs[rng.below(nfuncs as u64) as usize]),
                };
                img.push(*f, *b, inst);
            }
            let term = match rng.below(3) {
                0 if blocks.len() > 1 => {
                    Terminator::Jump(blocks[rng.below(blocks.len() as u64) as usize])
                }
                1 if blocks.len() > 1 => Terminator::Branch(
                    blocks[rng.below(blocks.len() as u64) as usize],
                    blocks[rng.below(blocks.len() as u64) as usize],
                ),
                _ => Terminator::Return,
            };
            img.set_term(*f, *b, term);
        }
        // Keep at least one function panic-seeded sometimes, so both
        // verdicts occur across the sweep.
        if fi > 0 && rng.below(4) == 0 {
            img.push(*f, BlockId(0), Inst::Panic);
        }
    }
    img
}

/// Independent ground truth for pass 1: worklist over (func, block)
/// states where a direct call enters the callee's entry block. A
/// reachable `Panic` or `CallIndirect` means `panic_free` must not
/// have been minted.
fn ground_truth_panic_reachable(img: &BinaryImage) -> bool {
    let mut seen: Vec<Vec<bool>> = img
        .funcs
        .iter()
        .map(|f| vec![false; f.blocks.len()])
        .collect();
    let mut work: Vec<(usize, usize)> = Vec::new();
    for e in &img.entries {
        if !seen[e.0][0] {
            seen[e.0][0] = true;
            work.push((e.0, 0));
        }
    }
    while let Some((fi, bi)) = work.pop() {
        let block = &img.funcs[fi].blocks[bi];
        for inst in &block.insts {
            match inst {
                Inst::Panic | Inst::CallIndirect => return true,
                Inst::Call(t) if !seen[t.0][0] => {
                    seen[t.0][0] = true;
                    work.push((t.0, 0));
                }
                _ => {}
            }
        }
        for s in match block.term {
            Terminator::Jump(b) => vec![b.0],
            Terminator::Branch(a, b) => vec![a.0, b.0],
            Terminator::Return => vec![],
        } {
            if !seen[fi][s] {
                seen[fi][s] = true;
                work.push((fi, s));
            }
        }
    }
    false
}

/// The sweep: over many random images, (a) a `panic_free` verdict must
/// agree with the independent ground truth, and (b) sabotaging a
/// minted image — injecting a panic or an unguarded unsafe at the
/// entry point — must flip the verdict to refusal.
#[test]
fn randomized_sabotage_sweep() {
    let mut rng = Lcg(0x5eed_cafe);
    let mut minted_panic_free = 0;
    let mut minted_no_unsafe = 0;
    for _ in 0..200 {
        let img = random_image(&mut rng);
        img.validate().expect("generator builds well-formed images");
        let r = analyze(&img, &cfg());

        // (a) soundness vs ground truth: mint ⇒ truly clean.
        if r.panic_free {
            minted_panic_free += 1;
            assert!(
                !ground_truth_panic_reachable(&img),
                "analyzer minted panic_free over a reachable panic"
            );
        }

        // (b) sabotage: a panic at the entry must always refuse.
        if r.panic_free {
            let mut sab = img.clone();
            let entry = sab.entries[0];
            sab.push(entry, BlockId(0), Inst::Panic);
            assert_ne!(sab.digest(), img.digest(), "sabotage must move the digest");
            assert!(
                !analyze(&sab, &cfg()).panic_free,
                "injected panic must refuse panic_free"
            );
        }

        // (b') sabotage: an unguarded unsafe at the entry must refuse.
        if r.no_unsafe {
            minted_no_unsafe += 1;
            let mut sab = img.clone();
            let entry = sab.entries[0];
            // v3 freshly computed, never guarded before use.
            sab.push(entry, BlockId(0), Inst::Compute(ValueId(3)));
            sab.push(
                entry,
                BlockId(0),
                Inst::Unsafe {
                    region: "sabotage".into(),
                    inputs: vec![ValueId(3)],
                },
            );
            assert!(
                !analyze(&sab, &cfg()).no_unsafe,
                "injected unguarded unsafe must refuse no_unsafe"
            );
        }
    }
    // The sweep must exercise both verdicts to mean anything.
    assert!(
        minted_panic_free > 10,
        "sweep too pessimistic to test mints"
    );
    assert!(minted_no_unsafe > 10);
    assert!(
        minted_panic_free < 200,
        "sweep too optimistic to test refusals"
    );
}

/// End-to-end sabotage through the kernel: a dirty image attested via
/// the full minting path must leave no `panic_free` credential behind.
#[test]
fn sabotaged_image_never_earns_the_credential() {
    let nexus = boot();
    let analyzer = AttestAnalyzer::launch(&nexus).expect("launch");
    let mut rng = Lcg(0xdead_beef);
    for i in 0..20 {
        let mut img = random_image(&mut rng);
        img.push(img.entries[0], BlockId(0), Inst::Panic);
        let subject = nexus.spawn(&format!("subject-{i}"), b"img");
        let att = analyzer
            .attest_binary(&nexus, subject, &img)
            .expect("attest");
        assert!(!att.holds(Claim::PanicFree));
        let prin = nexus.principal(subject).unwrap();
        let cred = analyzer.credential(Claim::PanicFree, &prin).to_string();
        assert!(
            !nexus
                .labels_of(subject)
                .unwrap()
                .iter()
                .any(|l| l.to_string() == cred),
            "no sabotaged image may yield panic_free"
        );
    }
}
