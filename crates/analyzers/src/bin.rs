//! A compact binary IR for IPD images — the input language of the
//! attestation analyzer ([`crate::attest`]).
//!
//! The native Nexus hands analyzers the ELF image of the IPD being
//! labeled; this simulation hands them a structured stand-in: a
//! control-flow graph per function, a direct call graph, explicit
//! `unsafe`-region markers with the values flowing into them, guard
//! (validity-check) instructions, and panic sites. Applications
//! construct images with the builder-style methods here, and the
//! analyzer's verdicts are *about this IR* — its soundness argument
//! (see `docs/ARCHITECTURE.md`) is stated against the semantics below.
//!
//! ## Semantics (what the passes assume)
//!
//! * Execution of a function starts at block 0; every instruction in
//!   a block executes in order, then the terminator transfers control.
//! * Values ([`ValueId`]) are function-local virtual registers.
//!   [`Inst::Compute`] (re)defines one from untrusted input;
//!   [`Inst::Guard`] marks a validity check that vouches for the
//!   value *from that point on, along that path*, until the value is
//!   redefined.
//! * [`Inst::Unsafe`] is an unsafe region consuming its input values;
//!   [`Inst::Call`] transfers to another function in the image and
//!   returns; [`Inst::CallIndirect`] transfers to an unknown target.
//! * [`Inst::Panic`] aborts the process. (Instructions after a panic
//!   in the same block are unreachable; the analyzer does not exploit
//!   this — it only ever errs toward *refusing* a credential.)

use nexus_tpm::{hash, Digest};

/// Index of a function within its [`BinaryImage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub usize);

/// Index of a basic block within its [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

/// A function-local virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// One instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Define (or redefine) a value from untrusted input or
    /// computation. Redefinition invalidates any earlier guard on the
    /// same value.
    Compute(ValueId),
    /// A validity/bounds check: from here on (along this path) the
    /// value counts as guarded.
    Guard(ValueId),
    /// An unsafe region consuming `inputs`; named for witnesses.
    Unsafe {
        /// Region name, quoted in refusal witnesses.
        region: String,
        /// Values flowing into the region.
        inputs: Vec<ValueId>,
    },
    /// Direct call to another function in the image.
    Call(FuncId),
    /// Indirect call through a function pointer — target unknown.
    CallIndirect,
    /// A panic site (unwind/abort edge).
    Panic,
}

/// Block terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch.
    Branch(BlockId, BlockId),
    /// Return to the caller.
    Return,
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Instructions, executed in order.
    pub insts: Vec<Inst>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

impl Default for Block {
    fn default() -> Self {
        Block {
            insts: Vec::new(),
            term: Terminator::Return,
        }
    }
}

/// A function: a CFG whose entry is block 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Name, quoted in witnesses.
    pub name: String,
    /// Basic blocks; block 0 is the entry and always exists.
    pub blocks: Vec<Block>,
}

/// A simulated IPD binary: functions, entry points, and a name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BinaryImage {
    /// Image name (e.g. the encoder's), folded into the digest.
    pub name: String,
    /// All functions.
    pub funcs: Vec<Function>,
    /// Entry points (exported symbols the loader may invoke).
    pub entries: Vec<FuncId>,
}

impl BinaryImage {
    /// An empty image with the given name.
    pub fn new(name: &str) -> BinaryImage {
        BinaryImage {
            name: name.to_string(),
            funcs: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Add a function (with its entry block) and return its id.
    pub fn add_func(&mut self, name: &str) -> FuncId {
        self.funcs.push(Function {
            name: name.to_string(),
            blocks: vec![Block::default()],
        });
        FuncId(self.funcs.len() - 1)
    }

    /// Mark a function as an entry point.
    pub fn add_entry(&mut self, f: FuncId) {
        self.entries.push(f);
    }

    /// Append a fresh block to `f`, returning its id.
    pub fn add_block(&mut self, f: FuncId) -> BlockId {
        let func = &mut self.funcs[f.0];
        func.blocks.push(Block::default());
        BlockId(func.blocks.len() - 1)
    }

    /// Append an instruction to a block.
    pub fn push(&mut self, f: FuncId, b: BlockId, inst: Inst) {
        self.funcs[f.0].blocks[b.0].insts.push(inst);
    }

    /// Set a block's terminator.
    pub fn set_term(&mut self, f: FuncId, b: BlockId, term: Terminator) {
        self.funcs[f.0].blocks[b.0].term = term;
    }

    /// Structural well-formedness: every referenced function, block,
    /// and entry id is in range. The analyzer refuses credentials for
    /// ill-formed images rather than guessing what they mean.
    pub fn validate(&self) -> Result<(), String> {
        for e in &self.entries {
            if e.0 >= self.funcs.len() {
                return Err(format!("entry point {} out of range", e.0));
            }
        }
        for (fi, func) in self.funcs.iter().enumerate() {
            if func.blocks.is_empty() {
                return Err(format!("function {} ({}) has no blocks", fi, func.name));
            }
            for (bi, block) in func.blocks.iter().enumerate() {
                for inst in &block.insts {
                    if let Inst::Call(target) = inst {
                        if target.0 >= self.funcs.len() {
                            return Err(format!(
                                "call target {} out of range in {}:{}",
                                target.0, func.name, bi
                            ));
                        }
                    }
                }
                let targets: &[BlockId] = match &block.term {
                    Terminator::Jump(t) => std::slice::from_ref(t),
                    Terminator::Branch(a, b) => {
                        if a.0 >= func.blocks.len() || b.0 >= func.blocks.len() {
                            return Err(format!("branch out of range in {}:{}", func.name, bi));
                        }
                        continue;
                    }
                    Terminator::Return => &[],
                };
                for t in targets {
                    if t.0 >= func.blocks.len() {
                        return Err(format!("jump out of range in {}:{}", func.name, bi));
                    }
                }
            }
        }
        Ok(())
    }

    /// A stable content digest over the canonical byte encoding of the
    /// whole image. Two structurally equal images digest equal; any
    /// mutation (instruction, edge, entry, name) moves the digest —
    /// this is what keys the analyzer's result cache and what makes a
    /// re-analysis after a binary change revoke stale credentials.
    pub fn digest(&self) -> Digest {
        let mut bytes = Vec::new();
        let push_usize = |bytes: &mut Vec<u8>, x: usize| {
            bytes.extend_from_slice(&(x as u64).to_le_bytes());
        };
        push_usize(&mut bytes, self.name.len());
        bytes.extend_from_slice(self.name.as_bytes());
        push_usize(&mut bytes, self.entries.len());
        for e in &self.entries {
            push_usize(&mut bytes, e.0);
        }
        push_usize(&mut bytes, self.funcs.len());
        for func in &self.funcs {
            push_usize(&mut bytes, func.name.len());
            bytes.extend_from_slice(func.name.as_bytes());
            push_usize(&mut bytes, func.blocks.len());
            for block in &func.blocks {
                push_usize(&mut bytes, block.insts.len());
                for inst in &block.insts {
                    match inst {
                        Inst::Compute(v) => {
                            bytes.push(1);
                            bytes.extend_from_slice(&v.0.to_le_bytes());
                        }
                        Inst::Guard(v) => {
                            bytes.push(2);
                            bytes.extend_from_slice(&v.0.to_le_bytes());
                        }
                        Inst::Unsafe { region, inputs } => {
                            bytes.push(3);
                            push_usize(&mut bytes, region.len());
                            bytes.extend_from_slice(region.as_bytes());
                            push_usize(&mut bytes, inputs.len());
                            for v in inputs {
                                bytes.extend_from_slice(&v.0.to_le_bytes());
                            }
                        }
                        Inst::Call(f) => {
                            bytes.push(4);
                            push_usize(&mut bytes, f.0);
                        }
                        Inst::CallIndirect => bytes.push(5),
                        Inst::Panic => bytes.push(6),
                    }
                }
                match &block.term {
                    Terminator::Jump(t) => {
                        bytes.push(10);
                        push_usize(&mut bytes, t.0);
                    }
                    Terminator::Branch(a, b) => {
                        bytes.push(11);
                        push_usize(&mut bytes, a.0);
                        push_usize(&mut bytes, b.0);
                    }
                    Terminator::Return => bytes.push(12),
                }
            }
        }
        hash(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_moves_on_any_mutation() {
        let mut img = BinaryImage::new("enc");
        let f = img.add_func("main");
        img.add_entry(f);
        img.push(f, BlockId(0), Inst::Compute(ValueId(0)));
        let d0 = img.digest();
        assert_eq!(d0, img.clone().digest(), "digest is deterministic");

        let mut renamed = img.clone();
        renamed.name = "enc2".into();
        assert_ne!(d0, renamed.digest());

        let mut grown = img.clone();
        grown.push(f, BlockId(0), Inst::Panic);
        assert_ne!(d0, grown.digest());

        let mut retermed = img.clone();
        let b = retermed.add_block(f);
        retermed.set_term(f, BlockId(0), Terminator::Jump(b));
        assert_ne!(d0, retermed.digest());
    }

    #[test]
    fn validate_catches_dangling_references() {
        let mut img = BinaryImage::new("bad");
        let f = img.add_func("main");
        img.add_entry(FuncId(7));
        assert!(img.validate().is_err());
        img.entries.clear();
        img.add_entry(f);
        img.push(f, BlockId(0), Inst::Call(FuncId(9)));
        assert!(img.validate().is_err());
        img.funcs[f.0].blocks[0].insts.clear();
        img.set_term(f, BlockId(0), Terminator::Branch(BlockId(0), BlockId(5)));
        assert!(img.validate().is_err());
        img.set_term(f, BlockId(0), Terminator::Return);
        assert!(img.validate().is_ok());
    }
}
