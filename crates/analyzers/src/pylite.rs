//! PyLite: the sandboxed tenant language of the Fauxbook web
//! framework (§4.1).
//!
//! The paper's framework runs tenant code under two labeling
//! functions: one performs *static analysis* ensuring the code is
//! legal and imports only whitelisted libraries; the second performs
//! *synthesis*, rewriting every reflection-related call so it cannot
//! reach the import machinery. PyLite reproduces exactly those
//! properties in a small interpreted language:
//!
//! * straight-line statements: `import m`, `x = expr`, bare calls;
//! * expressions: strings, integers, variables, and function calls
//!   into a host-supplied builtin table (where the cobuf operations
//!   live);
//! * **no data-dependent control flow** — there is no `if`/`while`,
//!   so tenant programs are data-independent by construction, which
//!   is the property that makes cobuf confinement sound.

use std::collections::HashMap;
use std::fmt;

/// Reflection-flavored callables that could reach the import
/// machinery (the attack §4.1 defends against).
pub const REFLECTION_FNS: &[&str] = &[
    "getattr",
    "setattr",
    "eval",
    "exec",
    "__import__",
    "globals",
    "locals",
    "vars",
    "type",
];

/// A PyLite value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PyValue {
    /// Integer.
    Int(i64),
    /// String.
    Str(String),
    /// An opaque handle (e.g. a cobuf id) — contents invisible.
    Handle(u64),
    /// Absent value.
    None,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Literal string.
    Str(String),
    /// Literal integer.
    Int(i64),
    /// Variable reference.
    Var(String),
    /// Function call.
    Call(String, Vec<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `import name`.
    Import(String),
    /// `name = expr`.
    Assign(String, Expr),
    /// Bare expression (for side-effecting calls).
    Expr(Expr),
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// Parse / runtime errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PyError {
    /// Syntax error with line number (1-based).
    Syntax {
        /// Line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// Import of a non-whitelisted module (static analysis verdict).
    ForbiddenImport(String),
    /// A rewritten reflection call fired at runtime.
    ReflectionDenied(String),
    /// Unknown function.
    NoSuchFunction(String),
    /// Unknown variable.
    NoSuchVariable(String),
    /// Builtin raised.
    Host(String),
}

impl fmt::Display for PyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PyError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            PyError::ForbiddenImport(m) => write!(f, "forbidden import: {m}"),
            PyError::ReflectionDenied(n) => write!(f, "reflection call denied: {n}"),
            PyError::NoSuchFunction(n) => write!(f, "no such function: {n}"),
            PyError::NoSuchVariable(n) => write!(f, "no such variable: {n}"),
            PyError::Host(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for PyError {}

// ---- parsing ----

fn parse_expr(src: &str, line: usize) -> Result<Expr, PyError> {
    let src = src.trim();
    let err = |m: &str| PyError::Syntax {
        line,
        message: m.to_string(),
    };
    if src.is_empty() {
        return Err(err("empty expression"));
    }
    if (src.starts_with('"') && src.ends_with('"') && src.len() >= 2)
        || (src.starts_with('\'') && src.ends_with('\'') && src.len() >= 2)
    {
        return Ok(Expr::Str(src[1..src.len() - 1].to_string()));
    }
    if let Ok(i) = src.parse::<i64>() {
        return Ok(Expr::Int(i));
    }
    if let Some(open) = src.find('(') {
        if !src.ends_with(')') {
            return Err(err("expected ')'"));
        }
        let name = src[..open].trim().to_string();
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(err("bad function name"));
        }
        let inner = &src[open + 1..src.len() - 1];
        let mut args = Vec::new();
        // Split on top-level commas (no nested parens in args split —
        // handle nesting with a depth counter; quotes respected).
        let mut depth = 0usize;
        let mut in_str: Option<char> = None;
        let mut start = 0usize;
        for (i, c) in inner.char_indices() {
            match (in_str, c) {
                (Some(q), c) if c == q => in_str = None,
                (Some(_), _) => {}
                (None, '"') => in_str = Some('"'),
                (None, '\'') => in_str = Some('\''),
                (None, '(') => depth += 1,
                (None, ')') => depth = depth.saturating_sub(1),
                (None, ',') if depth == 0 => {
                    args.push(parse_expr(&inner[start..i], line)?);
                    start = i + 1;
                }
                _ => {}
            }
        }
        if !inner[start..].trim().is_empty() {
            args.push(parse_expr(&inner[start..], line)?);
        } else if !args.is_empty() {
            return Err(err("trailing comma"));
        }
        return Ok(Expr::Call(name, args));
    }
    if src.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Ok(Expr::Var(src.to_string()));
    }
    Err(err(&format!("cannot parse expression: {src}")))
}

/// Parse a PyLite source string.
pub fn parse(source: &str) -> Result<Program, PyError> {
    let mut stmts = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(module) = line.strip_prefix("import ") {
            let module = module.trim();
            if module.is_empty() || !module.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(PyError::Syntax {
                    line: line_no,
                    message: "bad module name".into(),
                });
            }
            stmts.push(Stmt::Import(module.to_string()));
            continue;
        }
        // Assignment? Find a top-level '=' not inside quotes/parens
        // and not '=='.
        let mut eq_pos = None;
        {
            let bytes = line.as_bytes();
            let mut depth = 0;
            let mut in_str: Option<u8> = None;
            let mut i = 0;
            while i < bytes.len() {
                let c = bytes[i];
                match (in_str, c) {
                    (Some(q), c) if c == q => in_str = None,
                    (Some(_), _) => {}
                    (None, b'"') => in_str = Some(b'"'),
                    (None, b'\'') => in_str = Some(b'\''),
                    (None, b'(') => depth += 1,
                    (None, b')') => depth -= 1,
                    (None, b'=') if depth == 0 => {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                            i += 1;
                        } else {
                            eq_pos = Some(i);
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        if let Some(eq) = eq_pos {
            let name = line[..eq].trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(PyError::Syntax {
                    line: line_no,
                    message: format!("bad assignment target: {name}"),
                });
            }
            let value = parse_expr(&line[eq + 1..], line_no)?;
            stmts.push(Stmt::Assign(name.to_string(), value));
        } else {
            stmts.push(Stmt::Expr(parse_expr(line, line_no)?));
        }
    }
    Ok(Program { stmts })
}

// ---- static analysis (the first labeling function) ----

/// All modules the program imports.
pub fn analyze_imports(prog: &Program) -> Vec<String> {
    prog.stmts
        .iter()
        .filter_map(|s| match s {
            Stmt::Import(m) => Some(m.clone()),
            _ => None,
        })
        .collect()
}

/// Verify every import is whitelisted; returns the offending module
/// on failure.
pub fn check_import_whitelist(prog: &Program, whitelist: &[&str]) -> Result<(), PyError> {
    for m in analyze_imports(prog) {
        if !whitelist.contains(&m.as_str()) {
            return Err(PyError::ForbiddenImport(m));
        }
    }
    Ok(())
}

fn walk_calls<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
    if let Expr::Call(name, args) = e {
        out.push(name);
        for a in args {
            walk_calls(a, out);
        }
    }
}

/// Names of reflection-flavored calls appearing anywhere in the
/// program.
pub fn find_reflection(prog: &Program) -> Vec<String> {
    let mut calls = Vec::new();
    for s in &prog.stmts {
        match s {
            Stmt::Assign(_, e) | Stmt::Expr(e) => walk_calls(e, &mut calls),
            Stmt::Import(_) => {}
        }
    }
    calls
        .into_iter()
        .filter(|c| REFLECTION_FNS.contains(c))
        .map(str::to_string)
        .collect()
}

// ---- synthesis (the second labeling function) ----

fn rewrite_expr(e: &Expr) -> Expr {
    match e {
        Expr::Call(name, args) => {
            let args: Vec<Expr> = args.iter().map(rewrite_expr).collect();
            if REFLECTION_FNS.contains(&name.as_str()) {
                // Neutralize: the call becomes a runtime denial that
                // cannot reach the import machinery.
                Expr::Call("__denied__".to_string(), vec![Expr::Str(name.clone())])
            } else {
                Expr::Call(name.clone(), args)
            }
        }
        other => other.clone(),
    }
}

/// The synthetic pass: rewrite every reflection-related call so it
/// cannot invoke the import function (§4.1).
pub fn rewrite_reflection(prog: &Program) -> Program {
    Program {
        stmts: prog
            .stmts
            .iter()
            .map(|s| match s {
                Stmt::Import(m) => Stmt::Import(m.clone()),
                Stmt::Assign(n, e) => Stmt::Assign(n.clone(), rewrite_expr(e)),
                Stmt::Expr(e) => Stmt::Expr(rewrite_expr(e)),
            })
            .collect(),
    }
}

// ---- interpretation ----

/// A host builtin.
pub type Builtin<'h> = Box<dyn FnMut(Vec<PyValue>) -> Result<PyValue, PyError> + 'h>;

/// The PyLite interpreter: an environment plus a table of host
/// builtins (the framework registers the cobuf operations here).
#[derive(Default)]
pub struct Interpreter<'h> {
    env: HashMap<String, PyValue>,
    builtins: HashMap<String, Builtin<'h>>,
}

impl<'h> Interpreter<'h> {
    /// Empty interpreter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a host builtin.
    pub fn register(&mut self, name: &str, f: Builtin<'h>) {
        self.builtins.insert(name.to_string(), f);
    }

    /// Pre-bind a variable (e.g. the session's request cobuf).
    pub fn bind(&mut self, name: &str, v: PyValue) {
        self.env.insert(name.to_string(), v);
    }

    /// Read a variable after execution.
    pub fn get(&self, name: &str) -> Option<&PyValue> {
        self.env.get(name)
    }

    fn eval(&mut self, e: &Expr) -> Result<PyValue, PyError> {
        match e {
            Expr::Str(s) => Ok(PyValue::Str(s.clone())),
            Expr::Int(i) => Ok(PyValue::Int(*i)),
            Expr::Var(n) => self
                .env
                .get(n)
                .cloned()
                .ok_or_else(|| PyError::NoSuchVariable(n.clone())),
            Expr::Call(name, args) => {
                if name == "__denied__" {
                    let what = match args.first() {
                        Some(Expr::Str(s)) => s.clone(),
                        _ => "?".into(),
                    };
                    return Err(PyError::ReflectionDenied(what));
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                match self.builtins.get_mut(name) {
                    Some(f) => f(vals),
                    None => Err(PyError::NoSuchFunction(name.clone())),
                }
            }
        }
    }

    /// Execute a program; returns the value of the last statement.
    pub fn run(&mut self, prog: &Program) -> Result<PyValue, PyError> {
        let mut last = PyValue::None;
        for s in &prog.stmts {
            match s {
                Stmt::Import(_) => {
                    // Imports are resolved by the (whitelisted) host;
                    // at runtime they are no-ops.
                    last = PyValue::None;
                }
                Stmt::Assign(n, e) => {
                    let v = self.eval(e)?;
                    self.env.insert(n.clone(), v.clone());
                    last = v;
                }
                Stmt::Expr(e) => last = self.eval(e)?,
            }
        }
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_program() {
        let prog = parse(
            "import fauxbook\n\
             # a comment\n\
             x = \"hello\"\n\
             y = concat(x, ' world')\n\
             post(y)\n",
        )
        .unwrap();
        assert_eq!(prog.stmts.len(), 4);
        assert_eq!(analyze_imports(&prog), vec!["fauxbook"]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("x = ").is_err());
        assert!(parse("f(a,").is_err());
        assert!(parse("1bad! = 2").is_err());
        assert!(parse("import bad-name").is_err());
    }

    #[test]
    fn import_whitelist_enforced() {
        let prog = parse("import os").unwrap();
        assert_eq!(
            check_import_whitelist(&prog, &["fauxbook", "strings"]),
            Err(PyError::ForbiddenImport("os".into()))
        );
        let ok = parse("import fauxbook").unwrap();
        assert!(check_import_whitelist(&ok, &["fauxbook"]).is_ok());
    }

    #[test]
    fn reflection_detected_even_nested() {
        let prog = parse("x = concat(getattr(obj, 'secret'), 'x')").unwrap();
        assert_eq!(find_reflection(&prog), vec!["getattr"]);
        let clean = parse("x = concat('a', 'b')").unwrap();
        assert!(find_reflection(&clean).is_empty());
    }

    #[test]
    fn rewriting_neutralizes_reflection() {
        let prog = parse("x = __import__('os')").unwrap();
        let safe = rewrite_reflection(&prog);
        assert!(find_reflection(&safe).is_empty(), "rewritten code is clean");
        let mut interp = Interpreter::new();
        let err = interp.run(&safe).unwrap_err();
        assert_eq!(err, PyError::ReflectionDenied("__import__".into()));
    }

    #[test]
    fn interpreter_runs_with_host_builtins() {
        let mut interp = Interpreter::new();
        interp.register(
            "concat",
            Box::new(|args| {
                let mut out = String::new();
                for a in args {
                    match a {
                        PyValue::Str(s) => out.push_str(&s),
                        PyValue::Int(i) => out.push_str(&i.to_string()),
                        _ => return Err(PyError::Host("concat: bad arg".into())),
                    }
                }
                Ok(PyValue::Str(out))
            }),
        );
        let prog = parse("x = concat('a', 'b', 1)\ny = concat(x, '!')").unwrap();
        interp.run(&prog).unwrap();
        assert_eq!(interp.get("y"), Some(&PyValue::Str("ab1!".into())));
    }

    #[test]
    fn unknown_function_and_variable() {
        let mut interp = Interpreter::new();
        assert_eq!(
            interp.run(&parse("nope()").unwrap()),
            Err(PyError::NoSuchFunction("nope".into()))
        );
        assert_eq!(
            interp.run(&parse("x = missing").unwrap()),
            Err(PyError::NoSuchVariable("missing".into()))
        );
    }

    #[test]
    fn no_control_flow_in_the_language() {
        // `if` is not a statement form: it parses as an expression and
        // fails — tenant code cannot branch on data.
        assert!(parse("if x: y = 1").is_err());
    }

    #[test]
    fn handles_are_opaque() {
        let mut interp = Interpreter::new();
        interp.bind("buf", PyValue::Handle(42));
        interp.register(
            "length_of",
            Box::new(|args| match args.as_slice() {
                [PyValue::Handle(_)] => Ok(PyValue::Int(10)),
                _ => Err(PyError::Host("bad arg".into())),
            }),
        );
        let prog = parse("n = length_of(buf)").unwrap();
        interp.run(&prog).unwrap();
        assert_eq!(interp.get("n"), Some(&PyValue::Int(10)));
        // There is no builtin that turns a Handle into bytes unless
        // the host registers one; tenant interpreters don't get it.
    }
}
