//! The IPC connectivity analyzer (§2.2).
//!
//! "A transitive IPC connection graph that has no links to these
//! drivers demonstrates that there is no existing channel to the disk
//! or network." The analyzer enumerates the graph through the
//! kernel's introspection interface and emits labels of the form
//! `analyzer says ¬hasPath(X, Filesystem)`.

use nexus_kernel::Nexus;
use nexus_nal::{Formula, Principal, Term};
use std::collections::{HashMap, HashSet, VecDeque};

/// The labeling function.
pub struct IpcAnalyzer {
    /// The principal the analyzer's statements are attributed to
    /// (its process, e.g. `/proc/ipd/30`).
    pub principal: Principal,
}

/// The result of one analysis pass: the transitive closure of the
/// IPC graph at the time of analysis.
#[derive(Debug, Clone)]
pub struct ConnectivityReport {
    reach: HashMap<u64, HashSet<u64>>,
}

impl ConnectivityReport {
    /// Build from directed edges.
    pub fn from_edges(edges: &[(u64, u64)]) -> Self {
        let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut nodes: HashSet<u64> = HashSet::new();
        for &(a, b) in edges {
            adj.entry(a).or_default().push(b);
            nodes.insert(a);
            nodes.insert(b);
        }
        let mut reach = HashMap::new();
        for &n in &nodes {
            let mut seen = HashSet::new();
            let mut q = VecDeque::from([n]);
            while let Some(cur) = q.pop_front() {
                if let Some(nexts) = adj.get(&cur) {
                    for &nx in nexts {
                        if seen.insert(nx) {
                            q.push_back(nx);
                        }
                    }
                }
            }
            reach.insert(n, seen);
        }
        ConnectivityReport { reach }
    }

    /// Is there a (transitive, directed) IPC path from `a` to `b`?
    pub fn has_path(&self, a: u64, b: u64) -> bool {
        self.reach.get(&a).map(|s| s.contains(&b)).unwrap_or(false)
    }
}

impl IpcAnalyzer {
    /// Analyzer attributed to the given process principal.
    pub fn new(principal: Principal) -> Self {
        IpcAnalyzer { principal }
    }

    /// Run the analysis over a kernel's live IPC graph.
    pub fn analyze(&self, nexus: &Nexus) -> ConnectivityReport {
        ConnectivityReport::from_edges(&nexus.ipc_graph())
    }

    /// Emit the (no-)path labels for `subject` against the named
    /// `targets` (pid, display-name) pairs. Positive paths yield
    /// `hasPath`, absent paths yield `¬hasPath` — only the negative
    /// form certifies confinement.
    pub fn labels_for(
        &self,
        report: &ConnectivityReport,
        subject: u64,
        targets: &[(u64, &str)],
    ) -> Vec<Formula> {
        let subject_term = Term::sym(format!("/proc/ipd/{subject}"));
        targets
            .iter()
            .map(|(pid, name)| {
                let atom = Formula::pred(
                    "hasPath",
                    vec![subject_term.clone(), Term::sym(name.to_string())],
                );
                let stmt = if report.has_path(subject, *pid) {
                    atom
                } else {
                    atom.not()
                };
                stmt.says(self.principal.clone())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_kernel::{BootImages, NexusConfig};
    use nexus_storage::RamDisk;
    use nexus_tpm::Tpm;

    #[test]
    fn transitive_closure() {
        let r = ConnectivityReport::from_edges(&[(1, 2), (2, 3), (4, 1)]);
        assert!(r.has_path(1, 3));
        assert!(r.has_path(4, 3));
        assert!(!r.has_path(3, 1));
        assert!(!r.has_path(1, 4));
        assert!(!r.has_path(9, 1), "unknown nodes have no paths");
    }

    #[test]
    fn cycles_terminate() {
        let r = ConnectivityReport::from_edges(&[(1, 2), (2, 1)]);
        assert!(r.has_path(1, 1));
        assert!(r.has_path(2, 2));
    }

    #[test]
    fn live_kernel_analysis_and_labels() {
        let nexus = nexus_kernel::Nexus::boot(
            Tpm::new_with_seed(31),
            RamDisk::new(),
            &BootImages::standard(),
            NexusConfig::default(),
        )
        .unwrap();
        let player = nexus.spawn("movie-player", b"player");
        let fs_srv = nexus.spawn("fileserver", b"fs");
        let net = nexus.spawn("netdriver", b"net");
        let helper = nexus.spawn("helper", b"h");
        // The player talks only to a helper; the helper talks to no
        // one sensitive.
        let helper_port = nexus.create_port(helper).unwrap();
        nexus
            .ipc_send(player, helper_port, b"frame".to_vec())
            .unwrap();

        let analyzer_pid = nexus.spawn("ipc-analyzer", b"analyzer");
        let analyzer = IpcAnalyzer::new(nexus.principal(analyzer_pid).unwrap());
        let report = analyzer.analyze(&nexus);
        assert!(!report.has_path(player, fs_srv));
        assert!(!report.has_path(player, net));

        let labels = analyzer.labels_for(
            &report,
            player,
            &[(fs_srv, "Filesystem"), (net, "Netdriver")],
        );
        let rendered: Vec<String> = labels.iter().map(|l| l.to_string()).collect();
        assert!(rendered[0].contains("not hasPath("));
        assert!(rendered[0].starts_with(&format!("/proc/ipd/{analyzer_pid} says")));

        // Now the player opens a channel towards the filesystem: the
        // next analysis flips the label.
        let fs_port = nexus.create_port(fs_srv).unwrap();
        nexus.ipc_send(player, fs_port, b"leak".to_vec()).unwrap();
        let report2 = analyzer.analyze(&nexus);
        assert!(report2.has_path(player, fs_srv));
        let labels2 = analyzer.labels_for(&report2, player, &[(fs_srv, "Filesystem")]);
        assert!(!labels2[0].to_string().contains("not "));
    }
}
