//! The attestation analyzer: static panic/unsafe analysis that mints
//! credentials (ISSUE 8).
//!
//! This is the paper's *analytic* basis of trust made concrete: a
//! labeling function that inspects an IPD's binary ([`crate::bin`])
//! and, when the analysis comes back clean, deposits real credentials
//! — `panic_free(pid)` / `no_unsafe(pid)`, spoken by the analyzer's
//! own principal — into the analyzed process's labelstore, where the
//! guard's auto-prover finds them like any other label. Applications
//! then *demand* the property in a goal (`analyzer says
//! panic_free($subject)`) instead of trusting the binary axiomatically.
//!
//! Two passes run over the IR:
//!
//! 1. **Panic reachability** — interprocedural reachability from the
//!    image's entry points to panic sites. Blocks unreachable from a
//!    function's entry and functions unreachable from any entry point
//!    are pruned (a panic in dead code cannot execute). The call-graph
//!    walk is bounded; exceeding the bound refuses the credential
//!    rather than guessing. An indirect call is conservatively treated
//!    as a potential panic site: its target is unknown, so nothing can
//!    be promised past it.
//! 2. **Unguarded unsafe** (in the spirit of Rudra's unsafe-dataflow
//!    checks) — a forward *must* dataflow per function: a value counts
//!    as guarded at a program point only if a [`crate::bin::Inst::Guard`]
//!    dominates it on **every** path from the entry (redefinition
//!    kills the guard). An unsafe region consuming a value not in the
//!    must-guarded set refuses `no_unsafe` — including the classic
//!    "checked on one branch, not the other" shape.
//!
//! Both passes only ever err toward refusal: every run-time execution
//! path is a path of the IR's CFG, pass 1 over-approximates the
//! reachable instruction set, and pass 2 under-approximates the
//! guarded-value sets. Hence *any* reachable panic (or unguarded
//! unsafe input) implies no credential — the soundness property the
//! sabotage tests pin down.
//!
//! Results are cached per (subject, image digest). Re-analysis after a
//! binary change first **revokes** the previously minted credentials
//! through the kernel's label-removal epoch machinery
//! (`Nexus::revoke_credential`), so a stale attestation can never
//! authorize — the decision cache and prover memo are flushed before
//! the revocation returns.

use crate::bin::{BinaryImage, Function, Inst, Terminator};
use crate::pylite::{self, Program};
use nexus_core::LabelHandle;
use nexus_kernel::{KernelError, Nexus};
use nexus_nal::{Formula, Principal, Term};
use nexus_tpm::{hash, Digest};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Bounds for the interprocedural traversal. Exceeding either bound
/// is a *refusal*, never a silent pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Maximum functions visited across the call-graph walk.
    pub max_funcs: usize,
    /// Maximum call depth from an entry point.
    pub max_call_depth: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            max_funcs: 4096,
            max_call_depth: 128,
        }
    }
}

/// What one analysis run concluded about an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// No panic site is reachable from any entry point.
    pub panic_free: bool,
    /// Every reachable unsafe region's inputs are must-guarded.
    pub no_unsafe: bool,
    /// Why `panic_free` failed (call chain or indirect-call site).
    pub panic_witness: Option<String>,
    /// Why `no_unsafe` failed (function, region, value).
    pub unsafe_witness: Option<String>,
    /// Functions visited by the call-graph walk.
    pub funcs_analyzed: usize,
    /// The traversal hit a bound (both credentials refused).
    pub bounded_out: bool,
}

/// Successor blocks of a terminator.
fn succs(t: Terminator) -> Vec<usize> {
    match t {
        Terminator::Jump(b) => vec![b.0],
        Terminator::Branch(a, b) => vec![a.0, b.0],
        Terminator::Return => vec![],
    }
}

/// Blocks reachable from the function entry (dead-code pruning).
fn reachable_blocks(f: &Function) -> Vec<bool> {
    let mut seen = vec![false; f.blocks.len()];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        for s in succs(f.blocks[b].term) {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Per-function facts the interprocedural walk needs, computed over
/// *reachable* blocks only.
struct FuncSummary {
    panics: bool,
    indirect: bool,
    callees: Vec<usize>,
}

fn summarize(f: &Function) -> FuncSummary {
    let reach = reachable_blocks(f);
    let mut s = FuncSummary {
        panics: false,
        indirect: false,
        callees: Vec::new(),
    };
    for (bi, block) in f.blocks.iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        for inst in &block.insts {
            match inst {
                Inst::Panic => s.panics = true,
                Inst::CallIndirect => s.indirect = true,
                Inst::Call(t) => s.callees.push(t.0),
                _ => {}
            }
        }
    }
    s
}

/// The call chain from an entry point to `fid`, rendered for a
/// witness string.
fn call_chain(image: &BinaryImage, parents: &HashMap<usize, Option<usize>>, fid: usize) -> String {
    let mut chain = vec![fid];
    let mut cur = fid;
    while let Some(Some(p)) = parents.get(&cur) {
        chain.push(*p);
        cur = *p;
    }
    chain.reverse();
    chain
        .iter()
        .map(|f| image.funcs[*f].name.as_str())
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// The must-guard dataflow of pass 2 for one function: `Some(witness)`
/// if a reachable unsafe region consumes a value that is not guarded
/// on every path from the entry.
fn unguarded_unsafe(f: &Function) -> Option<String> {
    let n = f.blocks.len();
    // in-set per block: None = unvisited (⊤); meet = set intersection.
    let mut ins: Vec<Option<BTreeSet<u32>>> = vec![None; n];
    ins[0] = Some(BTreeSet::new());
    let mut work: VecDeque<usize> = VecDeque::from([0usize]);
    while let Some(b) = work.pop_front() {
        let mut set = ins[b].clone().expect("worklist holds visited blocks");
        for inst in &f.blocks[b].insts {
            match inst {
                Inst::Compute(v) => {
                    set.remove(&v.0);
                }
                Inst::Guard(v) => {
                    set.insert(v.0);
                }
                _ => {}
            }
        }
        for s in succs(f.blocks[b].term) {
            let changed = match &mut ins[s] {
                slot @ None => {
                    *slot = Some(set.clone());
                    true
                }
                Some(cur) => {
                    let before = cur.len();
                    cur.retain(|v| set.contains(v));
                    cur.len() != before
                }
            };
            if changed {
                work.push_back(s);
            }
        }
    }
    // Check pass: replay each reachable block from its fixpoint in-set.
    for (bi, block) in f.blocks.iter().enumerate() {
        let Some(start) = &ins[bi] else {
            continue; // unreachable: the region cannot execute
        };
        let mut set = start.clone();
        for inst in &block.insts {
            match inst {
                Inst::Compute(v) => {
                    set.remove(&v.0);
                }
                Inst::Guard(v) => {
                    set.insert(v.0);
                }
                Inst::Unsafe { region, inputs } => {
                    for v in inputs {
                        if !set.contains(&v.0) {
                            return Some(format!(
                                "unsafe region `{region}` in `{}` consumes v{} \
                                 without a dominating guard",
                                f.name, v.0
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Run both passes over an image. Ill-formed images should be rejected
/// by the caller via [`BinaryImage::validate`] before analysis;
/// [`AttestAnalyzer`] refuses both credentials on validation failure.
pub fn analyze(image: &BinaryImage, cfg: &AnalysisConfig) -> AnalysisReport {
    // --- interprocedural walk (BFS over the direct call graph) ---
    let mut parents: HashMap<usize, Option<usize>> = HashMap::new();
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    for e in &image.entries {
        if let std::collections::hash_map::Entry::Vacant(slot) = parents.entry(e.0) {
            slot.insert(None);
            queue.push_back((e.0, 0));
        }
    }
    let mut bounded_out = false;
    let mut panic_witness: Option<String> = None;
    let mut visited: Vec<usize> = Vec::new();
    let mut any_indirect = false;
    while let Some((fid, depth)) = queue.pop_front() {
        if visited.len() >= cfg.max_funcs {
            bounded_out = true;
            break;
        }
        visited.push(fid);
        let s = summarize(&image.funcs[fid]);
        if s.panics && panic_witness.is_none() {
            panic_witness = Some(format!(
                "reachable panic in `{}` via {}",
                image.funcs[fid].name,
                call_chain(image, &parents, fid)
            ));
        }
        if s.indirect {
            any_indirect = true;
            if panic_witness.is_none() {
                panic_witness = Some(format!(
                    "indirect call in `{}` (unknown target may panic) via {}",
                    image.funcs[fid].name,
                    call_chain(image, &parents, fid)
                ));
            }
        }
        for callee in s.callees {
            if parents.contains_key(&callee) {
                continue;
            }
            if depth + 1 > cfg.max_call_depth {
                bounded_out = true;
                continue;
            }
            parents.insert(callee, Some(fid));
            queue.push_back((callee, depth + 1));
        }
    }
    if bounded_out && panic_witness.is_none() {
        panic_witness = Some(format!(
            "call-graph traversal exceeded bounds (max_funcs={}, max_call_depth={})",
            cfg.max_funcs, cfg.max_call_depth
        ));
    }

    // --- unguarded-unsafe pass ---
    // A reachable indirect call may target *any* function in the
    // image (address-taken approximation), so the unsafe pass must
    // then cover every function, not just the directly reachable set.
    let mut unsafe_witness: Option<String> = None;
    if bounded_out {
        unsafe_witness = panic_witness.clone();
    } else {
        let check: Vec<usize> = if any_indirect {
            (0..image.funcs.len()).collect()
        } else {
            visited.clone()
        };
        for fid in check {
            if let Some(w) = unguarded_unsafe(&image.funcs[fid]) {
                unsafe_witness = Some(w);
                break;
            }
        }
    }

    AnalysisReport {
        panic_free: panic_witness.is_none(),
        no_unsafe: unsafe_witness.is_none(),
        panic_witness,
        unsafe_witness,
        funcs_analyzed: visited.len(),
        bounded_out,
    }
}

/// A property the analyzer can vouch for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Claim {
    /// No panic site reachable from any entry point.
    PanicFree,
    /// Every reachable unsafe region is input-guarded.
    NoUnsafe,
    /// A PyLite program imports only whitelisted modules.
    ImportsClean,
}

impl Claim {
    /// The predicate name used in credentials and goals.
    pub fn pred(&self) -> &'static str {
        match self {
            Claim::PanicFree => "panic_free",
            Claim::NoUnsafe => "no_unsafe",
            Claim::ImportsClean => "imports_clean",
        }
    }
}

/// The outcome of one attestation request: which claims were minted
/// (with their labelstore handles), which were refused (with the
/// analysis witness), whether a cached result was reused, and how many
/// stale credentials a re-analysis revoked.
#[derive(Debug, Clone)]
pub struct Attestation {
    /// Claims minted into the subject's labelstore.
    pub minted: Vec<(Claim, LabelHandle)>,
    /// Claims refused, with the witness.
    pub refused: Vec<(Claim, String)>,
    /// The verdict came from the analyzer's result cache.
    pub cached: bool,
    /// Credentials revoked because the binary changed.
    pub revoked: usize,
}

impl Attestation {
    /// Was `claim` minted?
    pub fn holds(&self, claim: Claim) -> bool {
        self.minted.iter().any(|(c, _)| *c == claim)
    }

    /// The refusal witness for `claim`, if it was refused.
    pub fn refusal(&self, claim: Claim) -> Option<&str> {
        self.refused
            .iter()
            .find(|(c, _)| *c == claim)
            .map(|(_, w)| w.as_str())
    }

    /// The labelstore handle of a minted claim.
    pub fn handle(&self, claim: Claim) -> Option<LabelHandle> {
        self.minted
            .iter()
            .find(|(c, _)| *c == claim)
            .map(|(_, h)| *h)
    }
}

#[derive(Clone)]
struct CacheEntry {
    digest: Digest,
    minted: Vec<(Claim, LabelHandle)>,
    refused: Vec<(Claim, String)>,
}

/// Analysis-result cache domains (one per input language).
const BINARY_DOMAIN: &str = "bin";
const PYLITE_DOMAIN: &str = "pylite";

/// The analyzer service: an IPD of its own whose principal speaks the
/// minted credentials. One instance serves many subjects; results are
/// cached per (subject, input digest) so repeat requests for an
/// unchanged binary cost a map lookup, not a re-analysis.
pub struct AttestAnalyzer {
    pid: u64,
    principal: Principal,
    cfg: AnalysisConfig,
    cache: Mutex<HashMap<(u64, &'static str), CacheEntry>>,
}

impl AttestAnalyzer {
    /// Spawn the analyzer IPD on `nexus` with default bounds.
    pub fn launch(nexus: &Nexus) -> Result<AttestAnalyzer, KernelError> {
        Self::launch_with(nexus, AnalysisConfig::default())
    }

    /// Spawn with explicit traversal bounds.
    pub fn launch_with(nexus: &Nexus, cfg: AnalysisConfig) -> Result<AttestAnalyzer, KernelError> {
        let pid = nexus.spawn("attest-analyzer", b"attest-analyzer-image");
        let principal = nexus.principal(pid)?;
        Ok(AttestAnalyzer {
            pid,
            principal,
            cfg,
            cache: Mutex::new(HashMap::new()),
        })
    }

    /// The analyzer's process id.
    pub fn pid(&self) -> u64 {
        self.pid
    }

    /// The principal that speaks minted credentials.
    pub fn principal(&self) -> &Principal {
        &self.principal
    }

    /// The goal formula demanding `claim` of the requesting subject:
    /// `analyzer says <pred>($subject)`. Installing this on an
    /// operation means only attested processes pass the guard.
    pub fn goal(&self, claim: Claim) -> Formula {
        Formula::pred(claim.pred(), vec![Term::var("subject")]).says(self.principal.clone())
    }

    /// The credential formula minting `claim` deposits for `subject`
    /// (handy for asserting labelstore contents in tests).
    pub fn credential(&self, claim: Claim, subject: &Principal) -> Formula {
        Formula::pred(claim.pred(), vec![Term::Prin(subject.clone())]).says(self.principal.clone())
    }

    /// Analyze `image` on behalf of `subject` and mint/refuse the
    /// binary claims. Cached per image digest; a changed digest
    /// revokes the stale credentials (flushing the decision cache and
    /// prover memo via the label-removal epoch) before re-analyzing.
    pub fn attest_binary(
        &self,
        nexus: &Nexus,
        subject: u64,
        image: &BinaryImage,
    ) -> Result<Attestation, KernelError> {
        self.attest_binary_with(nexus, subject, image, false)
    }

    /// [`AttestAnalyzer::attest_binary`] with `force` bypassing the
    /// result cache: the previous credentials are revoked and the
    /// analysis re-run even for an unchanged digest. This is the
    /// "re-analysis per authorization" arm of the fig7a benchmark.
    pub fn attest_binary_with(
        &self,
        nexus: &Nexus,
        subject: u64,
        image: &BinaryImage,
        force: bool,
    ) -> Result<Attestation, KernelError> {
        let digest = image.digest();
        let verdicts = |image: &BinaryImage| -> Vec<(Claim, Result<(), String>)> {
            match image.validate() {
                Err(e) => vec![
                    (Claim::PanicFree, Err(e.clone())),
                    (Claim::NoUnsafe, Err(e)),
                ],
                Ok(()) => {
                    let r = analyze(image, &self.cfg);
                    vec![
                        (
                            Claim::PanicFree,
                            if r.panic_free {
                                Ok(())
                            } else {
                                Err(r.panic_witness.unwrap_or_else(|| "panic reachable".into()))
                            },
                        ),
                        (
                            Claim::NoUnsafe,
                            if r.no_unsafe {
                                Ok(())
                            } else {
                                Err(r
                                    .unsafe_witness
                                    .unwrap_or_else(|| "unguarded unsafe".into()))
                            },
                        ),
                    ]
                }
            }
        };
        self.attest_cached(nexus, subject, BINARY_DOMAIN, digest, force, || {
            verdicts(image)
        })
    }

    /// Run the PyLite import-whitelist analysis through the same
    /// attestation path: a clean program earns `imports_clean`. The
    /// verdict is fully determined by (imports, whitelist), so that
    /// pair is the cache digest.
    pub fn attest_pylite(
        &self,
        nexus: &Nexus,
        subject: u64,
        program: &Program,
        whitelist: &[&str],
    ) -> Result<Attestation, KernelError> {
        let imports = pylite::analyze_imports(program);
        let mut bytes = Vec::new();
        for part in imports
            .iter()
            .map(String::as_str)
            .chain(std::iter::once("\u{0}whitelist\u{0}").chain(whitelist.iter().copied()))
        {
            bytes.extend_from_slice(&(part.len() as u64).to_le_bytes());
            bytes.extend_from_slice(part.as_bytes());
        }
        let digest = hash(&bytes);
        self.attest_cached(nexus, subject, PYLITE_DOMAIN, digest, false, || {
            let violations: Vec<String> = imports
                .iter()
                .filter(|m| !whitelist.contains(&m.as_str()))
                .cloned()
                .collect();
            let verdict = if violations.is_empty() {
                Ok(())
            } else {
                Err(format!(
                    "imports outside the whitelist: {}",
                    violations.join(", ")
                ))
            };
            vec![(Claim::ImportsClean, verdict)]
        })
    }

    /// The shared cache/revoke/mint discipline behind every claim
    /// domain. Holds the cache lock across the kernel calls so a
    /// concurrent attestation of the same subject cannot interleave
    /// revocation and minting.
    fn attest_cached(
        &self,
        nexus: &Nexus,
        subject: u64,
        domain: &'static str,
        digest: Digest,
        force: bool,
        run: impl FnOnce() -> Vec<(Claim, Result<(), String>)>,
    ) -> Result<Attestation, KernelError> {
        let key = (subject, domain);
        let mut cache = self.cache.lock();
        if !force {
            if let Some(entry) = cache.get(&key) {
                if entry.digest == digest {
                    nexus.note_analysis(true);
                    return Ok(Attestation {
                        minted: entry.minted.clone(),
                        refused: entry.refused.clone(),
                        cached: true,
                        revoked: 0,
                    });
                }
            }
        }
        // The input changed (or re-analysis was forced): flush the
        // stale credentials through the epoch machinery *before*
        // re-analyzing, so no authorization can race a mint against a
        // result the old binary earned.
        let mut revoked = 0;
        if let Some(old) = cache.remove(&key) {
            for (_, h) in &old.minted {
                nexus.revoke_credential(subject, *h)?;
                revoked += 1;
            }
        }
        nexus.note_analysis(false);
        let subject_prin = nexus.principal(subject)?;
        let mut minted = Vec::new();
        let mut refused = Vec::new();
        for (claim, verdict) in run() {
            match verdict {
                Ok(()) => {
                    let stmt = Formula::pred(claim.pred(), vec![Term::Prin(subject_prin.clone())]);
                    let h = nexus.mint_credential(self.pid, subject, stmt)?;
                    minted.push((claim, h));
                }
                Err(witness) => {
                    nexus.refuse_credential(self.pid, subject, claim.pred(), &witness)?;
                    refused.push((claim, witness));
                }
            }
        }
        cache.insert(
            key,
            CacheEntry {
                digest,
                minted: minted.clone(),
                refused: refused.clone(),
            },
        );
        Ok(Attestation {
            minted,
            refused,
            cached: false,
            revoked,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bin::{BlockId, ValueId};

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    #[test]
    fn clean_image_passes_both() {
        let mut img = BinaryImage::new("clean");
        let main = img.add_func("main");
        img.add_entry(main);
        let helper = img.add_func("helper");
        img.push(main, BlockId(0), Inst::Compute(ValueId(0)));
        img.push(main, BlockId(0), Inst::Guard(ValueId(0)));
        img.push(
            main,
            BlockId(0),
            Inst::Unsafe {
                region: "memcpy".into(),
                inputs: vec![ValueId(0)],
            },
        );
        img.push(main, BlockId(0), Inst::Call(helper));
        let r = analyze(&img, &cfg());
        assert!(r.panic_free, "{:?}", r.panic_witness);
        assert!(r.no_unsafe, "{:?}", r.unsafe_witness);
        assert_eq!(r.funcs_analyzed, 2);
    }

    #[test]
    fn reachable_panic_refuses_with_call_chain() {
        let mut img = BinaryImage::new("panicky");
        let main = img.add_func("main");
        let mid = img.add_func("mid");
        let deep = img.add_func("deep");
        img.add_entry(main);
        img.push(main, BlockId(0), Inst::Call(mid));
        img.push(mid, BlockId(0), Inst::Call(deep));
        img.push(deep, BlockId(0), Inst::Panic);
        let r = analyze(&img, &cfg());
        assert!(!r.panic_free);
        let w = r.panic_witness.unwrap();
        assert!(w.contains("main -> mid -> deep"), "{w}");
        assert!(r.no_unsafe);
    }

    #[test]
    fn dead_code_panic_is_pruned() {
        let mut img = BinaryImage::new("deadcode");
        let main = img.add_func("main");
        img.add_entry(main);
        // Unreachable block holding the panic.
        let dead = img.add_block(main);
        img.push(main, dead, Inst::Panic);
        // Unreachable function holding a panic.
        let unref = img.add_func("never-called");
        img.push(unref, BlockId(0), Inst::Panic);
        let r = analyze(&img, &cfg());
        assert!(r.panic_free, "{:?}", r.panic_witness);
    }

    #[test]
    fn depth_bound_refuses_conservatively() {
        // A call chain deeper than the bound: refuse, don't guess.
        let mut img = BinaryImage::new("deep");
        let fns: Vec<_> = (0..10).map(|i| img.add_func(&format!("f{i}"))).collect();
        img.add_entry(fns[0]);
        for w in fns.windows(2) {
            img.push(w[0], BlockId(0), Inst::Call(w[1]));
        }
        let r = analyze(
            &img,
            &AnalysisConfig {
                max_funcs: 4096,
                max_call_depth: 3,
            },
        );
        assert!(r.bounded_out);
        assert!(!r.panic_free && !r.no_unsafe);
    }

    #[test]
    fn guard_must_dominate_across_joins() {
        // Guarded on both arms ⇒ guarded at the join.
        let mut img = BinaryImage::new("joined");
        let main = img.add_func("main");
        img.add_entry(main);
        let (a, b, join) = (
            img.add_block(main),
            img.add_block(main),
            img.add_block(main),
        );
        img.push(main, BlockId(0), Inst::Compute(ValueId(1)));
        img.set_term(main, BlockId(0), Terminator::Branch(a, b));
        img.push(main, a, Inst::Guard(ValueId(1)));
        img.set_term(main, a, Terminator::Jump(join));
        img.push(main, b, Inst::Guard(ValueId(1)));
        img.set_term(main, b, Terminator::Jump(join));
        img.push(
            main,
            join,
            Inst::Unsafe {
                region: "deref".into(),
                inputs: vec![ValueId(1)],
            },
        );
        assert!(analyze(&img, &cfg()).no_unsafe);

        // Redefinition after the guard kills it.
        img.push(main, b, Inst::Compute(ValueId(1)));
        let r = analyze(&img, &cfg());
        assert!(!r.no_unsafe);
        assert!(r.unsafe_witness.unwrap().contains("deref"));
    }
}
