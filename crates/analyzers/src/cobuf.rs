//! Constrained buffers (§4.1).
//!
//! A cobuf is a byte array tagged with the principal owning the
//! information inside it. Code running on the web framework can
//! store, retrieve, concatenate, and slice cobufs — everything a
//! data-independent social-network application needs — but has no
//! operation that reveals the contents. Collation is gated: data may
//! be copied into a cobuf owned by `dst` only if `dst` speaks for the
//! source's owner (the friendship edge in the social graph). Only the
//! web framework, holding the render token minted at store creation,
//! can extract bytes for delivery to an authenticated session.
//!
//! The interface is deliberately not Turing-complete over contents:
//! there is no data-dependent branch on cobuf bytes (§4.1 notes vote
//! tallying is inexpressible by design).

use nexus_nal::Principal;
use std::collections::HashMap;
use std::fmt;

/// Handle to a cobuf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CobufId(pub u64);

/// The framework's render capability. Constructed exactly once, by
/// [`CobufStore::new`]; tenant code never holds one.
pub struct RenderToken {
    _private: (),
}

/// Errors from cobuf operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CobufError {
    /// Unknown handle.
    NoSuchCobuf(u64),
    /// Collation denied: destination owner does not speak for the
    /// source owner.
    FlowDenied {
        /// Destination owner.
        dst: String,
        /// Source owner.
        src: String,
    },
    /// Slice out of range.
    BadRange,
}

impl fmt::Display for CobufError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CobufError::NoSuchCobuf(id) => write!(f, "no such cobuf: {id}"),
            CobufError::FlowDenied { dst, src } => {
                write!(f, "flow denied: {dst} does not speak for {src}")
            }
            CobufError::BadRange => write!(f, "slice out of range"),
        }
    }
}

impl std::error::Error for CobufError {}

struct Cobuf {
    owner: Principal,
    bytes: Vec<u8>,
}

/// The framework's table of constrained buffers.
pub struct CobufStore {
    bufs: HashMap<u64, Cobuf>,
    next: u64,
}

impl CobufStore {
    /// Create the store and the single render token.
    pub fn new() -> (CobufStore, RenderToken) {
        (
            CobufStore {
                bufs: HashMap::new(),
                next: 1,
            },
            RenderToken { _private: () },
        )
    }

    /// Ingest user data. The owner identifier is attached in the web
    /// server layer after authentication — tenant code cannot forge
    /// cobufs on behalf of a user because it never calls this with an
    /// owner of its choosing.
    pub fn ingest(&mut self, owner: Principal, bytes: Vec<u8>) -> CobufId {
        let id = self.next;
        self.next += 1;
        self.bufs.insert(id, Cobuf { owner, bytes });
        CobufId(id)
    }

    fn get(&self, id: CobufId) -> Result<&Cobuf, CobufError> {
        self.bufs.get(&id.0).ok_or(CobufError::NoSuchCobuf(id.0))
    }

    /// Owner of a cobuf (owners are public metadata; contents are
    /// not).
    pub fn owner(&self, id: CobufId) -> Result<&Principal, CobufError> {
        Ok(&self.get(id)?.owner)
    }

    /// Length in bytes (needed for layout; reveals no content).
    pub fn len(&self, id: CobufId) -> Result<usize, CobufError> {
        Ok(self.get(id)?.bytes.len())
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self, id: CobufId) -> Result<bool, CobufError> {
        Ok(self.get(id)?.bytes.is_empty())
    }

    /// Concatenate `parts` into a new cobuf owned by `dst_owner`.
    /// Every part's owner must satisfy `dst_owner speaksfor part`
    /// under `speaks_for` (or be `dst_owner` itself).
    pub fn concat(
        &mut self,
        dst_owner: Principal,
        parts: &[CobufId],
        speaks_for: &dyn Fn(&Principal, &Principal) -> bool,
    ) -> Result<CobufId, CobufError> {
        let mut bytes = Vec::new();
        for part in parts {
            let src = self.get(*part)?;
            if src.owner != dst_owner && !speaks_for(&dst_owner, &src.owner) {
                return Err(CobufError::FlowDenied {
                    dst: dst_owner.to_string(),
                    src: src.owner.to_string(),
                });
            }
            bytes.extend_from_slice(&src.bytes);
        }
        Ok(self.ingest(dst_owner, bytes))
    }

    /// Slice a cobuf; the result keeps the source owner.
    pub fn slice(&mut self, id: CobufId, start: usize, end: usize) -> Result<CobufId, CobufError> {
        let src = self.get(id)?;
        if start > end || end > src.bytes.len() {
            return Err(CobufError::BadRange);
        }
        let owner = src.owner.clone();
        let bytes = src.bytes[start..end].to_vec();
        Ok(self.ingest(owner, bytes))
    }

    /// Extract bytes for rendering to an authenticated session —
    /// requires the framework's token, so tenant code cannot call it.
    pub fn render(&self, id: CobufId, _token: &RenderToken) -> Result<&[u8], CobufError> {
        Ok(&self.get(id)?.bytes)
    }

    /// Number of cobufs held.
    pub fn count(&self) -> usize {
        self.bufs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: &str) -> Principal {
        Principal::name(n)
    }

    #[test]
    fn ingest_len_owner_no_content_access() {
        let (mut store, token) = CobufStore::new();
        let id = store.ingest(p("alice"), b"status: hello".to_vec());
        assert_eq!(store.len(id).unwrap(), 13);
        assert_eq!(store.owner(id).unwrap(), &p("alice"));
        // Only the token holder can see the bytes.
        assert_eq!(store.render(id, &token).unwrap(), b"status: hello");
    }

    #[test]
    fn concat_same_owner_allowed() {
        let (mut store, token) = CobufStore::new();
        let a = store.ingest(p("alice"), b"hello ".to_vec());
        let b = store.ingest(p("alice"), b"world".to_vec());
        let c = store.concat(p("alice"), &[a, b], &|_, _| false).unwrap();
        assert_eq!(store.render(c, &token).unwrap(), b"hello world");
    }

    #[test]
    fn concat_across_owners_requires_speaksfor() {
        let (mut store, _token) = CobufStore::new();
        let bob_post = store.ingest(p("bob"), b"bob's post".to_vec());
        // alice's wall wants bob's post: allowed only if alice
        // speaksfor bob (they are friends).
        let friends = |dst: &Principal, src: &Principal| dst == &p("alice") && src == &p("bob");
        assert!(store.concat(p("alice"), &[bob_post], &friends).is_ok());
        let strangers = |_: &Principal, _: &Principal| false;
        let err = store.concat(p("carol"), &[bob_post], &strangers);
        assert!(matches!(err, Err(CobufError::FlowDenied { .. })));
    }

    #[test]
    fn slice_keeps_owner() {
        let (mut store, _t) = CobufStore::new();
        let id = store.ingest(p("alice"), b"0123456789".to_vec());
        let s = store.slice(id, 2, 5).unwrap();
        assert_eq!(store.owner(s).unwrap(), &p("alice"));
        assert_eq!(store.len(s).unwrap(), 3);
        assert!(matches!(store.slice(id, 8, 4), Err(CobufError::BadRange)));
        assert!(matches!(store.slice(id, 0, 99), Err(CobufError::BadRange)));
    }

    #[test]
    fn missing_handles() {
        let (mut store, _t) = CobufStore::new();
        assert!(matches!(
            store.slice(CobufId(99), 0, 0),
            Err(CobufError::NoSuchCobuf(99))
        ));
    }
}
