//! # Labeling functions: analysis and synthesis
//!
//! Logical attestation's non-axiomatic bases for trust (§1) are
//! implemented by *labeling functions* — programs that inspect or
//! transform other programs and emit labels describing them:
//!
//! * [`ipc_analyzer`] — the **analytic** basis: walks the kernel's
//!   transitive IPC connection graph through introspection and emits
//!   `¬hasPath(X, Filesystem)`-style labels (§2.2, the movie-player
//!   application);
//! * [`pylite`] — both bases at once, as in Fauxbook's sandbox
//!   (§4.1): a small interpreted language with a static import-
//!   whitelist analysis and a **synthetic** reflection-rewriting pass
//!   that together confine tenant code;
//! * [`cobuf`] — constrained buffers: owner-tagged byte strings that
//!   tenant code can store, retrieve, concatenate, and slice but never
//!   inspect; collation is gated on the social graph's `speaksfor`
//!   relation;
//! * [`attest`] — the attestation analyzer (ISSUE 8): static
//!   panic-reachability and unguarded-unsafe passes over the [`bin`]
//!   IR that mint `panic_free`/`no_unsafe` (and, for PyLite,
//!   `imports_clean`) credentials through the kernel's labelstore,
//!   revoked through the label-removal epoch when the binary changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attest;
pub mod bin;
pub mod cobuf;
pub mod ipc_analyzer;
pub mod pylite;

pub use attest::{analyze, AnalysisConfig, AnalysisReport, AttestAnalyzer, Attestation, Claim};
pub use bin::BinaryImage;
pub use cobuf::{CobufId, CobufStore};
pub use ipc_analyzer::{ConnectivityReport, IpcAnalyzer};
pub use pylite::{analyze_imports, find_reflection, rewrite_reflection, Interpreter, PyValue};
