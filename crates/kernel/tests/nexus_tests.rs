//! Kernel-level tests: boot, the authorization path of Figure 1,
//! system calls, and introspection.

use nexus_core::{AuthorityKind, FnAuthority, ResourceId};
use nexus_kernel::{BootImages, Nexus, NexusConfig, SysRet, Syscall};
use nexus_nal::{parse, Formula, Principal};
use nexus_storage::RamDisk;
use nexus_tpm::Tpm;
use std::sync::Arc;

fn boot() -> Nexus {
    Nexus::boot(
        Tpm::new_with_seed(123),
        RamDisk::new(),
        &BootImages::standard(),
        NexusConfig::default(),
    )
    .unwrap()
}

#[test]
fn first_boot_takes_ownership() {
    let nexus = boot();
    assert!(nexus.first_boot());
    assert!(nexus.tpm().is_owned());
}

#[test]
fn reboot_recovers_state() {
    let nexus = boot();
    let (tpm, disk) = nexus.shutdown();
    let nexus2 = Nexus::boot(tpm, disk, &BootImages::standard(), NexusConfig::default()).unwrap();
    assert!(!nexus2.first_boot());
}

#[test]
fn modified_kernel_image_cannot_recover() {
    let nexus = boot();
    let (tpm, disk) = nexus.shutdown();
    let evil = BootImages {
        kernel: b"evil-kernel".to_vec(),
        ..BootImages::standard()
    };
    let err = Nexus::boot(tpm, disk, &evil, NexusConfig::default());
    assert!(err.is_err(), "PCR mismatch must block state recovery");
}

#[test]
fn basic_syscalls() {
    let nexus = boot();
    let parent = nexus.spawn("parent", b"img");
    let child = nexus.spawn_child(parent, "child", b"img").unwrap();
    assert_eq!(nexus.syscall(child, Syscall::Null).unwrap(), SysRet::Unit);
    assert_eq!(
        nexus.syscall(child, Syscall::GetPpid).unwrap(),
        SysRet::Int(parent)
    );
    let SysRet::Int(t1) = nexus.syscall(child, Syscall::GetTimeOfDay).unwrap() else {
        panic!()
    };
    let SysRet::Int(t2) = nexus.syscall(child, Syscall::GetTimeOfDay).unwrap() else {
        panic!()
    };
    assert!(t2 > t1);
    assert_eq!(nexus.syscall(child, Syscall::Yield).unwrap(), SysRet::Unit);
}

#[test]
fn relinquished_syscalls_fail() {
    let nexus = boot();
    let pid = nexus.spawn("ws", b"webserver");
    nexus.relinquish(pid, "open").unwrap();
    assert!(nexus.syscall(pid, Syscall::Open("/x".into())).is_err());
    // Other calls still work.
    assert!(nexus.syscall(pid, Syscall::Null).is_ok());
}

#[test]
fn file_owner_can_use_own_file_via_default_policy() {
    let nexus = boot();
    let pid = nexus.spawn("app", b"img");
    nexus.fs_create(pid, "/mine").unwrap();
    // Default policy: FS.file:/mine says <op>; the ownership label
    // plus the request statement discharge it via handoff.
    let SysRet::Int(fd) = nexus.syscall(pid, Syscall::Open("/mine".into())).unwrap() else {
        panic!()
    };
    assert!(matches!(
        nexus.syscall(pid, Syscall::Write(fd, b"hi".to_vec())),
        Ok(SysRet::Int(2))
    ));
    let SysRet::Int(fd2) = nexus.syscall(pid, Syscall::Open("/mine".into())).unwrap() else {
        panic!()
    };
    assert_eq!(
        nexus.syscall(pid, Syscall::Read(fd2, 10)).unwrap(),
        SysRet::Data(b"hi".to_vec())
    );
}

#[test]
fn stranger_denied_by_default_policy() {
    let nexus = boot();
    let owner = nexus.spawn("owner", b"img");
    let stranger = nexus.spawn("stranger", b"img");
    nexus.fs_create(owner, "/secret").unwrap();
    assert!(nexus
        .syscall(stranger, Syscall::Open("/secret".into()))
        .is_err());
}

#[test]
fn owner_can_setgoal_and_grant_access() {
    let nexus = boot();
    let owner = nexus.spawn("owner", b"img");
    let friend = nexus.spawn("friend", b"img");
    nexus.fs_create(owner, "/shared").unwrap();
    // Owner sets a goal admitting the friend's own request.
    let friend_principal = nexus.principal(friend).unwrap();
    let goal = parse(&format!("{friend_principal} says open")).unwrap();
    nexus
        .sys_setgoal(owner, ResourceId::file("/shared"), "open", goal)
        .unwrap();
    assert!(nexus
        .syscall(friend, Syscall::Open("/shared".into()))
        .is_ok());
    // A third process is still shut out.
    let other = nexus.spawn("other", b"img");
    assert!(nexus
        .syscall(other, Syscall::Open("/shared".into()))
        .is_err());
}

#[test]
fn stranger_cannot_setgoal_on_others_file() {
    let nexus = boot();
    let owner = nexus.spawn("owner", b"img");
    let mallory = nexus.spawn("mallory", b"img");
    nexus.fs_create(owner, "/f").unwrap();
    let err = nexus.sys_setgoal(mallory, ResourceId::file("/f"), "open", Formula::True);
    assert!(err.is_err());
}

#[test]
fn lockout_without_superuser_is_possible() {
    // Footnote 2: the owner can set an unsatisfiable goal and lock
    // out everyone — including themselves. There is no superuser.
    let nexus = boot();
    let owner = nexus.spawn("owner", b"img");
    nexus.fs_create(owner, "/oops").unwrap();
    nexus
        .sys_setgoal(owner, ResourceId::file("/oops"), "open", Formula::False)
        .unwrap();
    assert!(nexus.syscall(owner, Syscall::Open("/oops".into())).is_err());
}

#[test]
fn decision_cache_reduces_guard_upcalls() {
    let nexus = boot();
    let pid = nexus.spawn("app", b"img");
    nexus.fs_create(pid, "/f").unwrap();
    for _ in 0..50 {
        nexus.syscall(pid, Syscall::Open("/f".into())).unwrap();
    }
    let upcalls = nexus.guard_upcalls();
    assert!(
        upcalls <= 3,
        "repeat opens must be served by the decision cache, upcalls={upcalls}"
    );
    assert!(nexus.decision_cache_stats().hits >= 45);
}

#[test]
fn setgoal_invalidates_cached_decisions() {
    let nexus = boot();
    let pid = nexus.spawn("app", b"img");
    nexus.fs_create(pid, "/f").unwrap();
    // Warm the cache with an allow.
    nexus.syscall(pid, Syscall::Open("/f".into())).unwrap();
    nexus.syscall(pid, Syscall::Open("/f".into())).unwrap();
    // Owner locks the file.
    nexus
        .sys_setgoal(pid, ResourceId::file("/f"), "open", Formula::False)
        .unwrap();
    assert!(
        nexus.syscall(pid, Syscall::Open("/f".into())).is_err(),
        "stale cached allow must not survive setgoal"
    );
}

#[test]
fn authority_backed_goal_tracks_live_state() {
    let nexus = boot();
    let pid = nexus.spawn("app", b"img");
    nexus.fs_create(pid, "/timed").unwrap();
    // Clock authority (embedded): time is mutable state.
    let now = Arc::new(parking_lot::Mutex::new(20110301i64));
    let clock = now.clone();
    nexus.register_authority(
        Principal::name("NTP"),
        Arc::new(FnAuthority(move |s: &nexus_nal::Formula| {
            if let nexus_nal::Formula::Cmp(op, a, b) = s {
                if let (nexus_nal::Term::Sym(n), nexus_nal::Term::Int(bound)) = (a, b) {
                    if n == "TimeNow" {
                        return op.eval(&*clock.lock(), bound);
                    }
                }
            }
            false
        })),
        AuthorityKind::Embedded,
    );
    nexus
        .sys_setgoal(
            pid,
            ResourceId::file("/timed"),
            "open",
            parse("NTP says TimeNow < 20110319").unwrap(),
        )
        .unwrap();
    // Supply the proof (a single authority-backed assumption).
    let proof = nexus_nal::Proof::assume(parse("NTP says TimeNow < 20110319").unwrap());
    nexus
        .sys_set_proof(pid, "open", &ResourceId::file("/timed"), proof)
        .unwrap();
    assert!(nexus.syscall(pid, Syscall::Open("/timed".into())).is_ok());
    // The deadline passes; the very next check fails — no revocation
    // machinery needed (§2.7).
    *now.lock() = 20110401;
    assert!(nexus.syscall(pid, Syscall::Open("/timed".into())).is_err());
}

#[test]
fn introspection_views_live_state() {
    let nexus = boot();
    let pid = nexus.spawn("worker", b"image-bytes");
    assert!(nexus
        .introspect_read(&format!("/proc/ipd/{pid}/name"))
        .unwrap()
        .contains("worker"));
    nexus.publish(pid, "modules", "mod1,mod2").unwrap();
    assert_eq!(
        nexus
            .introspect_read(&format!("/proc/app/{pid}/modules"))
            .unwrap(),
        "modules=mod1,mod2"
    );
    nexus.sched().set_weight("tenant-a", 3);
    nexus.sched().set_weight("tenant-b", 1);
    assert_eq!(
        nexus
            .introspect_read("/proc/sched/tenant-a/weight")
            .unwrap(),
        "weight=3"
    );
    assert!(nexus
        .introspect_read("/proc/sched/tenant-a/share")
        .unwrap()
        .starts_with("share=0.75"));
    assert!(nexus.introspect_read("/proc/nope").is_err());
}

#[test]
fn ipc_graph_reflects_sends() {
    let nexus = boot();
    let a = nexus.spawn("a", b"");
    let b = nexus.spawn("b", b"");
    let port = nexus.create_port(b).unwrap();
    nexus.ipc_send(a, port, b"hello".to_vec()).unwrap();
    let (from, msg) = nexus.ipc_recv(b, port).unwrap();
    assert_eq!(from, a);
    assert_eq!(msg, b"hello");
    assert!(nexus.ipc_graph().contains(&(a, b)));
    let edges = nexus.introspect_read("/proc/ipc/edges").unwrap();
    assert!(edges.contains(&format!("{a}->{b}")));
}

#[test]
fn port_binding_label_deposited() {
    let nexus = boot();
    let pid = nexus.spawn("svc", b"");
    let port = nexus.create_port(pid).unwrap();
    let labels = nexus.labels_of(pid).unwrap();
    let expect = parse(&format!("Nexus says IPC.{port} speaksfor /proc/ipd/{pid}")).unwrap();
    assert!(labels.contains(&expect));
}

#[test]
fn recv_requires_ownership() {
    let nexus = boot();
    let a = nexus.spawn("a", b"");
    let b = nexus.spawn("b", b"");
    let port = nexus.create_port(b).unwrap();
    nexus.ipc_send(a, port, vec![1]).unwrap();
    assert!(nexus.ipc_recv(a, port).is_err());
    assert!(nexus.ipc_recv(b, port).is_ok());
}

#[test]
fn externalize_and_import_across_kernels() {
    // A label minted on one Nexus is verified on another machine
    // holding the first machine's EK.
    let nexus_a = boot();
    let pid = nexus_a.spawn("prover", b"img");
    let h = nexus_a.sys_say(pid, "isTypeSafe(PGM)").unwrap();
    let cert = nexus_a.externalize(pid, h).unwrap();
    let ek_a = nexus_a.tpm().ek_public();

    let nexus_b = Nexus::boot(
        Tpm::new_with_seed(9),
        RamDisk::new(),
        &BootImages::standard(),
        NexusConfig::default(),
    )
    .unwrap();
    let importer = nexus_b.spawn("verifier", b"img");
    let h2 = nexus_b.import_cert(importer, &cert, &ek_a).unwrap();
    let labels = nexus_b.labels_of(importer).unwrap();
    assert_eq!(labels.len(), 1);
    let _ = h2;
    // The imported statement is attributed to the fully-qualified
    // remote principal, not a local name.
    let s = labels[0].to_string();
    assert!(s.contains("says isTypeSafe(PGM)"));
    assert!(s.starts_with("key:"));
}

#[test]
fn interposed_syscalls_can_be_blocked() {
    struct DenyYield;
    impl nexus_kernel::Interceptor for DenyYield {
        fn name(&self) -> &str {
            "deny-yield"
        }
        fn on_call(&mut self, call: &mut nexus_kernel::IpcCall) -> nexus_kernel::Verdict {
            if call.operation == "yield" {
                nexus_kernel::Verdict::Block
            } else {
                nexus_kernel::Verdict::Continue
            }
        }
    }
    let nexus = boot();
    let pid = nexus.spawn("app", b"");
    nexus
        .interpose(
            0,
            nexus_kernel::SYSCALL_CHANNEL,
            Box::new(DenyYield),
            nexus_kernel::MonitorLevel::Kernel,
        )
        .unwrap();
    assert!(matches!(
        nexus.syscall(pid, Syscall::Yield),
        Err(nexus_kernel::KernelError::Blocked { .. })
    ));
    assert!(nexus.syscall(pid, Syscall::Null).is_ok());
}

#[test]
fn goal_guarded_introspection() {
    let nexus = boot();
    let owner = nexus.spawn("tenant-a", b"");
    let snoop = nexus.spawn("tenant-b", b"");
    nexus.sched().set_weight("tenant-a", 2);
    // Guard the tenant's weight file so only the tenant reads it
    // (§4.1: "goal statements ensure that file is not readable by
    // other tenants").
    let path = "/proc/sched/tenant-a/weight";
    let obj = ResourceId::new("proc", path);
    nexus.grant_ownership(owner, &obj).unwrap();
    let owner_principal = nexus.principal(owner).unwrap();
    nexus
        .sys_setgoal(
            owner,
            obj,
            "read",
            parse(&format!("{owner_principal} says read")).unwrap(),
        )
        .unwrap();
    assert!(nexus.introspect_read_authorized(owner, path).is_ok());
    assert!(nexus.introspect_read_authorized(snoop, path).is_err());
}

#[test]
fn transferred_away_label_invalidates_cached_allow() {
    // A cached allow whose auto-constructed proof rested on an
    // ownership label must not survive the label leaving the
    // subject's labelstore via transfer_label.
    let nexus = boot();
    let a = nexus.spawn("a", b"img-a");
    let b = nexus.spawn("b", b"img-b");
    let object = ResourceId::file("/owned");
    let h = nexus.grant_ownership(a, &object).unwrap();
    // Auto-proved from the ownership label and cached.
    assert!(nexus.authorize(a, "read", &object).unwrap());
    assert!(nexus.authorize(a, "read", &object).unwrap());
    assert!(nexus.decision_cache_stats().hits >= 1);

    nexus.transfer_label(a, h, b).unwrap();
    assert!(
        !nexus.authorize(a, "read", &object).unwrap(),
        "allow cached from a departed credential must not be served"
    );
    // The label's statement names `a`, so `b` gains nothing from it.
    assert!(!nexus.authorize(b, "read", &object).unwrap());
}
