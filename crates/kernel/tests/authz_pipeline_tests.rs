//! Kernel-level tests of the asynchronous authorization pipeline:
//! sync-over-pipeline equivalence, ticket semantics, invalidation
//! fencing, and teardown.

use nexus_core::ResourceId;
use nexus_kernel::{AuthzOutcome, GuardPoolConfig, Nexus};
use nexus_nal::{parse, Formula, Principal, Proof};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn booted() -> Arc<Nexus> {
    Arc::new(Nexus::boot_default().unwrap())
}

/// A world with one file, an allow-anyone read goal, and one reader.
fn reader_world(nexus: &Arc<Nexus>) -> (u64, ResourceId) {
    let owner = nexus.spawn("owner", b"img");
    nexus.fs_create(owner, "/data").unwrap();
    let object = ResourceId::file("/data");
    nexus
        .sys_setgoal(
            owner,
            object.clone(),
            "read",
            parse("$subject says read(file:/data)").unwrap(),
        )
        .unwrap();
    (owner, object)
}

#[test]
fn pipeline_sync_path_agrees_with_inline() {
    let nexus = booted();
    let (_owner, object) = reader_world(&nexus);
    // Non-owner subjects on both paths: `read` is allowed by the
    // goal's `$subject says read(...)` shape, `unheard_op` falls to
    // the owner-only default goal and is denied.
    let inline_pid = nexus.spawn("inline", b"img");
    let inline_allow = nexus.authorize(inline_pid, "read", &object).unwrap();
    let inline_deny = nexus.authorize(inline_pid, "unheard_op", &object).unwrap();
    assert!(inline_allow);
    assert!(!inline_deny);

    let pool = nexus.start_authz_pipeline(GuardPoolConfig::default());
    // Fresh subject so the decision cache can't answer for us.
    let fresh = nexus.spawn("fresh", b"img");
    assert_eq!(
        nexus.authorize(fresh, "read", &object).unwrap(),
        inline_allow
    );
    assert_eq!(
        nexus.authorize(fresh, "unheard_op", &object).unwrap(),
        inline_deny
    );
    // The completion counter is bumped *after* tickets resolve (the
    // order the quiesce fence needs), so settle before comparing.
    pool.quiesce();
    let stats = nexus.authz_stats().expect("pipeline running");
    assert!(stats.submitted >= 2, "misses must route through the pool");
    assert_eq!(stats.submitted, stats.completed);
}

#[test]
fn async_ticket_poll_wait_and_callback() {
    let nexus = booted();
    let (_, object) = reader_world(&nexus);
    nexus.start_authz_pipeline(GuardPoolConfig::default());
    let pid = nexus.spawn("reader", b"img");

    let ticket = nexus.authorize_async(pid, "read", &object).unwrap();
    let fired = Arc::new(AtomicBool::new(false));
    let fired2 = Arc::clone(&fired);
    ticket.on_complete(move |o| {
        assert!(o.is_allow());
        fired2.store(true, Ordering::SeqCst);
    });
    assert_eq!(ticket.wait(), AuthzOutcome::Allow);
    assert!(fired.load(Ordering::SeqCst));
    // A second authorization for the same tuple hits the decision
    // cache and comes back already resolved.
    let cached = nexus.authorize_async(pid, "read", &object).unwrap();
    assert_eq!(cached.try_outcome(), Some(AuthzOutcome::Allow));
}

#[test]
fn async_ticket_without_pipeline_resolves_inline() {
    let nexus = booted();
    let (_, object) = reader_world(&nexus);
    let pid = nexus.spawn("reader", b"img");
    let ticket = nexus.authorize_async(pid, "read", &object).unwrap();
    assert_eq!(ticket.try_outcome(), Some(AuthzOutcome::Allow));
}

#[test]
fn async_unknown_pid_is_a_kernel_error() {
    let nexus = booted();
    let (_, object) = reader_world(&nexus);
    nexus.start_authz_pipeline(GuardPoolConfig::default());
    assert!(nexus.authorize_async(9999, "read", &object).is_err());
    assert!(nexus.authorize(9999, "read", &object).is_err());
}

#[test]
fn setgoal_fences_in_flight_tickets() {
    // After sys_setgoal(False) *returns*, no previously submitted
    // ticket may complete with a stale allow: the quiesce fence keeps
    // the syscall open until in-flight batches have re-validated.
    let nexus = booted();
    let (owner, object) = reader_world(&nexus);
    nexus.start_authz_pipeline(GuardPoolConfig {
        workers: 2,
        ..Default::default()
    });
    for round in 0..50 {
        let pids: Vec<u64> = (0..4)
            .map(|i| nexus.spawn(&format!("r{round}-{i}"), b"img"))
            .collect();
        let tickets: Vec<_> = pids
            .iter()
            .map(|&pid| nexus.authorize_async(pid, "read", &object).unwrap())
            .collect();
        nexus
            .sys_setgoal(owner, object.clone(), "read", Formula::False)
            .unwrap();
        // The fence has run: every ticket still unresolved was
        // re-evaluated under *some* current goal; and any allow must
        // have been decided before the flip — by now all are done.
        for t in &tickets {
            assert!(
                t.try_outcome().is_some(),
                "fence returned with a ticket still in flight"
            );
        }
        // New submissions must see the false goal.
        let probe = nexus.spawn(&format!("probe{round}"), b"img");
        let t = nexus.authorize_async(probe, "read", &object).unwrap();
        assert_eq!(t.wait(), AuthzOutcome::Deny, "stale allow after setgoal");
        nexus
            .sys_setgoal(
                owner,
                object.clone(),
                "read",
                parse("$subject says read(file:/data)").unwrap(),
            )
            .unwrap();
    }
}

#[test]
fn stored_and_inline_proofs_flow_through_pipeline() {
    let nexus = booted();
    let owner = nexus.spawn("owner", b"img");
    nexus.fs_create(owner, "/vault").unwrap();
    let object = ResourceId::file("/vault");
    let goal = parse("Owner says ok").unwrap();
    nexus
        .sys_setgoal(owner, object.clone(), "read", goal.clone())
        .unwrap();
    nexus.start_authz_pipeline(GuardPoolConfig::default());

    let pid = nexus.spawn("client", b"img");
    // No credential, no proof: deny.
    assert!(!nexus.authorize(pid, "read", &object).unwrap());
    // Inline proof without the credential: still deny.
    let proof = Proof::assume(goal.clone());
    assert!(!nexus
        .authorize_with(pid, "read", &object, Some(&proof))
        .unwrap());
    // Grant the credential; inline proof now passes.
    nexus
        .kernel_label(pid, Principal::name("Owner"), parse("ok").unwrap())
        .unwrap();
    assert!(nexus
        .authorize_with(pid, "read", &object, Some(&proof))
        .unwrap());
    // Stored proof passes too (fresh subject dodges the decision
    // cache entry the inline call may have filled).
    let pid2 = nexus.spawn("client2", b"img");
    nexus
        .kernel_label(pid2, Principal::name("Owner"), parse("ok").unwrap())
        .unwrap();
    nexus
        .sys_set_proof(pid2, "read", &object, proof.clone())
        .unwrap();
    assert!(nexus.authorize(pid2, "read", &object).unwrap());
}

#[test]
fn coalescing_batches_share_guard_work() {
    let nexus = booted();
    let (owner, object) = reader_world(&nexus);
    // Ground goal so batches amortize (no $subject variable): anyone
    // holding the Gate credential may read.
    nexus
        .sys_setgoal(
            owner,
            object.clone(),
            "read",
            parse("Gate says open").unwrap(),
        )
        .unwrap();
    // One slow-ish worker forces queue build-up → coalescing.
    let pool = nexus.start_authz_pipeline(GuardPoolConfig {
        workers: 1,
        max_batch: 64,
        prioritizer: None,
    });
    let pids: Vec<u64> = (0..16)
        .map(|i| {
            let pid = nexus.spawn(&format!("c{i}"), b"img");
            nexus
                .kernel_label(pid, Principal::name("Gate"), parse("open").unwrap())
                .unwrap();
            pid
        })
        .collect();
    let tickets: Vec<_> = pids
        .iter()
        .map(|&pid| nexus.authorize_async(pid, "read", &object).unwrap())
        .collect();
    for t in &tickets {
        assert_eq!(t.wait(), AuthzOutcome::Allow);
    }
    pool.quiesce();
    let stats = nexus.authz_stats().unwrap();
    assert_eq!(stats.completed, stats.submitted);
    assert!(
        stats.max_batch_seen >= 2 || stats.batches as usize >= tickets.len(),
        "either batches coalesced or the worker kept up one-by-one: {stats:?}"
    );
}

#[test]
fn stop_pipeline_reverts_to_inline() {
    let nexus = booted();
    let (_, object) = reader_world(&nexus);
    nexus.start_authz_pipeline(GuardPoolConfig::default());
    let pid = nexus.spawn("reader", b"img");
    assert!(nexus.authorize(pid, "read", &object).unwrap());
    nexus.stop_authz_pipeline();
    assert!(nexus.authz_stats().is_none());
    // Fresh subject: must evaluate inline, not fault.
    let pid2 = nexus.spawn("reader2", b"img");
    assert!(nexus.authorize(pid2, "read", &object).unwrap());
}

#[test]
fn start_is_idempotent() {
    let nexus = booted();
    let p1 = nexus.start_authz_pipeline(GuardPoolConfig::default());
    let p2 = nexus.start_authz_pipeline(GuardPoolConfig {
        workers: 1,
        ..Default::default()
    });
    assert!(Arc::ptr_eq(&p1, &p2));
}

#[test]
fn heavier_tenants_drain_first_under_backlog() {
    // The default prioritizer consults per-IPD stride weights.
    let nexus = booted();
    let (_, object) = reader_world(&nexus);
    let heavy = nexus.spawn("tenant-heavy", b"img");
    let light = nexus.spawn("tenant-light", b"img");
    nexus.sched().set_weight("tenant-heavy", 8);
    nexus.sched().set_weight("tenant-light", 1);
    // A single worker plus a plug request lets a backlog form.
    let pool = nexus.start_authz_pipeline(GuardPoolConfig {
        workers: 1,
        max_batch: 1,
        prioritizer: None,
    });
    let plug_pid = nexus.spawn("plug", b"img");
    let plug = nexus.authorize_async(plug_pid, "read", &object).unwrap();
    // Submit light first, heavy second — distinct ops so they can't
    // coalesce; completion order should favor the heavy tenant. This
    // is inherently timing-dependent, so assert only the invariant
    // that both complete and the scheduler was consulted (weights
    // exist); the authzd unit tests pin the ordering deterministically.
    let t_light = nexus.authorize_async(light, "op_a", &object).unwrap();
    let t_heavy = nexus.authorize_async(heavy, "op_b", &object).unwrap();
    let _ = plug.wait();
    let _ = t_light.wait();
    let _ = t_heavy.wait();
    assert_eq!(nexus.sched().weight("tenant-heavy"), Some(8));
    pool.quiesce();
    let stats = nexus.authz_stats().unwrap();
    assert_eq!(stats.completed, stats.submitted);
}
