//! Kernel-level tests of the asynchronous authorization pipeline:
//! sync-over-pipeline equivalence, ticket semantics, invalidation
//! fencing, bounded admission, external-authority isolation, and
//! teardown.

use nexus_core::{AuthorityKind, FnAuthority, ResourceId};
use nexus_kernel::{AuthzOutcome, GuardPoolConfig, Nexus, OverflowPolicy};
use nexus_nal::{parse, Formula, Principal, Proof};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn booted() -> Arc<Nexus> {
    Arc::new(Nexus::boot_default().unwrap())
}

/// A world with one file, an allow-anyone read goal, and one reader.
fn reader_world(nexus: &Arc<Nexus>) -> (u64, ResourceId) {
    let owner = nexus.spawn("owner", b"img");
    nexus.fs_create(owner, "/data").unwrap();
    let object = ResourceId::file("/data");
    nexus
        .sys_setgoal(
            owner,
            object.clone(),
            "read",
            parse("$subject says read(file:/data)").unwrap(),
        )
        .unwrap();
    (owner, object)
}

#[test]
fn pipeline_sync_path_agrees_with_inline() {
    let nexus = booted();
    let (_owner, object) = reader_world(&nexus);
    // Non-owner subjects on both paths: `read` is allowed by the
    // goal's `$subject says read(...)` shape, `unheard_op` falls to
    // the owner-only default goal and is denied.
    let inline_pid = nexus.spawn("inline", b"img");
    let inline_allow = nexus.authorize(inline_pid, "read", &object).unwrap();
    let inline_deny = nexus.authorize(inline_pid, "unheard_op", &object).unwrap();
    assert!(inline_allow);
    assert!(!inline_deny);

    let pool = nexus.start_authz_pipeline(GuardPoolConfig::default());
    // Fresh subject so the decision cache can't answer for us.
    let fresh = nexus.spawn("fresh", b"img");
    assert_eq!(
        nexus.authorize(fresh, "read", &object).unwrap(),
        inline_allow
    );
    assert_eq!(
        nexus.authorize(fresh, "unheard_op", &object).unwrap(),
        inline_deny
    );
    // The completion counter is bumped *after* tickets resolve (the
    // order the quiesce fence needs), so settle before comparing.
    pool.quiesce();
    let stats = nexus.authz_stats().expect("pipeline running");
    assert!(stats.submitted >= 2, "misses must route through the pool");
    assert_eq!(stats.submitted, stats.completed);
}

#[test]
fn async_ticket_poll_wait_and_callback() {
    let nexus = booted();
    let (_, object) = reader_world(&nexus);
    nexus.start_authz_pipeline(GuardPoolConfig::default());
    let pid = nexus.spawn("reader", b"img");

    let ticket = nexus.authorize_async(pid, "read", &object).unwrap();
    let fired = Arc::new(AtomicBool::new(false));
    let fired2 = Arc::clone(&fired);
    ticket.on_complete(move |o| {
        assert!(o.is_allow());
        fired2.store(true, Ordering::SeqCst);
    });
    assert_eq!(ticket.wait(), AuthzOutcome::Allow);
    assert!(fired.load(Ordering::SeqCst));
    // A second authorization for the same tuple hits the decision
    // cache and comes back already resolved.
    let cached = nexus.authorize_async(pid, "read", &object).unwrap();
    assert_eq!(cached.try_outcome(), Some(AuthzOutcome::Allow));
}

#[test]
fn async_ticket_without_pipeline_resolves_inline() {
    let nexus = booted();
    let (_, object) = reader_world(&nexus);
    let pid = nexus.spawn("reader", b"img");
    let ticket = nexus.authorize_async(pid, "read", &object).unwrap();
    assert_eq!(ticket.try_outcome(), Some(AuthzOutcome::Allow));
}

#[test]
fn async_unknown_pid_is_a_kernel_error() {
    let nexus = booted();
    let (_, object) = reader_world(&nexus);
    nexus.start_authz_pipeline(GuardPoolConfig::default());
    assert!(nexus.authorize_async(9999, "read", &object).is_err());
    assert!(nexus.authorize(9999, "read", &object).is_err());
}

#[test]
fn setgoal_fences_in_flight_tickets() {
    // After sys_setgoal(False) *returns*, no previously submitted
    // ticket may complete with a stale allow: the quiesce fence keeps
    // the syscall open until in-flight batches have re-validated.
    let nexus = booted();
    let (owner, object) = reader_world(&nexus);
    nexus.start_authz_pipeline(GuardPoolConfig {
        workers: 2,
        ..Default::default()
    });
    for round in 0..50 {
        let pids: Vec<u64> = (0..4)
            .map(|i| nexus.spawn(&format!("r{round}-{i}"), b"img"))
            .collect();
        let tickets: Vec<_> = pids
            .iter()
            .map(|&pid| nexus.authorize_async(pid, "read", &object).unwrap())
            .collect();
        nexus
            .sys_setgoal(owner, object.clone(), "read", Formula::False)
            .unwrap();
        // The fence has run: every ticket still unresolved was
        // re-evaluated under *some* current goal; and any allow must
        // have been decided before the flip — by now all are done.
        for t in &tickets {
            assert!(
                t.try_outcome().is_some(),
                "fence returned with a ticket still in flight"
            );
        }
        // New submissions must see the false goal.
        let probe = nexus.spawn(&format!("probe{round}"), b"img");
        let t = nexus.authorize_async(probe, "read", &object).unwrap();
        assert_eq!(t.wait(), AuthzOutcome::Deny, "stale allow after setgoal");
        nexus
            .sys_setgoal(
                owner,
                object.clone(),
                "read",
                parse("$subject says read(file:/data)").unwrap(),
            )
            .unwrap();
    }
}

#[test]
fn stored_and_inline_proofs_flow_through_pipeline() {
    let nexus = booted();
    let owner = nexus.spawn("owner", b"img");
    nexus.fs_create(owner, "/vault").unwrap();
    let object = ResourceId::file("/vault");
    let goal = parse("Owner says ok").unwrap();
    nexus
        .sys_setgoal(owner, object.clone(), "read", goal.clone())
        .unwrap();
    nexus.start_authz_pipeline(GuardPoolConfig::default());

    let pid = nexus.spawn("client", b"img");
    // No credential, no proof: deny.
    assert!(!nexus.authorize(pid, "read", &object).unwrap());
    // Inline proof without the credential: still deny.
    let proof = Proof::assume(goal.clone());
    assert!(!nexus
        .authorize_with(pid, "read", &object, Some(&proof))
        .unwrap());
    // Grant the credential; inline proof now passes.
    nexus
        .kernel_label(pid, Principal::name("Owner"), parse("ok").unwrap())
        .unwrap();
    assert!(nexus
        .authorize_with(pid, "read", &object, Some(&proof))
        .unwrap());
    // Stored proof passes too (fresh subject dodges the decision
    // cache entry the inline call may have filled).
    let pid2 = nexus.spawn("client2", b"img");
    nexus
        .kernel_label(pid2, Principal::name("Owner"), parse("ok").unwrap())
        .unwrap();
    nexus
        .sys_set_proof(pid2, "read", &object, proof.clone())
        .unwrap();
    assert!(nexus.authorize(pid2, "read", &object).unwrap());
}

#[test]
fn coalescing_batches_share_guard_work() {
    let nexus = booted();
    let (owner, object) = reader_world(&nexus);
    // Ground goal so batches amortize (no $subject variable): anyone
    // holding the Gate credential may read.
    nexus
        .sys_setgoal(
            owner,
            object.clone(),
            "read",
            parse("Gate says open").unwrap(),
        )
        .unwrap();
    // One slow-ish worker forces queue build-up → coalescing.
    let pool = nexus.start_authz_pipeline(GuardPoolConfig {
        workers: 1,
        max_batch: 64,
        ..Default::default()
    });
    let pids: Vec<u64> = (0..16)
        .map(|i| {
            let pid = nexus.spawn(&format!("c{i}"), b"img");
            nexus
                .kernel_label(pid, Principal::name("Gate"), parse("open").unwrap())
                .unwrap();
            pid
        })
        .collect();
    let tickets: Vec<_> = pids
        .iter()
        .map(|&pid| nexus.authorize_async(pid, "read", &object).unwrap())
        .collect();
    for t in &tickets {
        assert_eq!(t.wait(), AuthzOutcome::Allow);
    }
    pool.quiesce();
    let stats = nexus.authz_stats().unwrap();
    assert_eq!(stats.completed, stats.submitted);
    assert!(
        stats.max_batch_seen >= 2 || stats.batches as usize >= tickets.len(),
        "either batches coalesced or the worker kept up one-by-one: {stats:?}"
    );
}

/// A resource whose `poke` goal depends on the `Stale` external
/// authority, which answers nothing until `release` is set (and
/// counts how many queries reached it). Returns the object plus a
/// supply of subjects holding a stored proof that leans on the
/// authority.
#[allow(clippy::type_complexity)]
fn stuck_authority_world(
    nexus: &Arc<Nexus>,
    owner: u64,
    subjects: usize,
) -> (ResourceId, Vec<u64>, Arc<AtomicBool>, Arc<AtomicU64>) {
    let ext = ResourceId::new("svc", "stale");
    nexus.grant_ownership(owner, &ext).unwrap();
    let stale_goal = parse("Stale says fresh").unwrap();
    nexus
        .sys_setgoal(owner, ext.clone(), "poke", stale_goal.clone())
        .unwrap();
    let release = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(AtomicU64::new(0));
    let gate = Arc::clone(&release);
    let count = Arc::clone(&entered);
    nexus.register_authority(
        Principal::name("Stale"),
        Arc::new(FnAuthority(move |_s: &Formula| {
            count.fetch_add(1, Ordering::SeqCst);
            while !gate.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            true
        })),
        AuthorityKind::External,
    );
    let pids = (0..subjects)
        .map(|i| {
            let pid = nexus.spawn(&format!("ext{i}"), b"img");
            nexus
                .sys_set_proof(pid, "poke", &ext, Proof::assume(stale_goal.clone()))
                .unwrap();
            pid
        })
        .collect();
    (ext, pids, release, entered)
}

fn spin_until(deadline_secs: u64, what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(deadline_secs);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting: {what}");
        std::thread::yield_now();
    }
}

#[test]
fn stuck_external_authority_saturates_only_the_external_pool() {
    let nexus = booted();
    let (owner, object) = reader_world(&nexus);
    let (ext, ext_pids, release, entered) = stuck_authority_world(&nexus, owner, 7);
    nexus.start_authz_pipeline(GuardPoolConfig {
        workers: 2,
        max_batch: 1,
        max_queued: 4,
        overflow: OverflowPolicy::Reject,
        external_workers: 1,
        prioritizer: None,
        stage_timers: None,
    });
    // The first external request wedges the (sole) external worker…
    let stuck = nexus.authorize_async(ext_pids[0], "poke", &ext).unwrap();
    spin_until(10, "external worker at the gate", || {
        entered.load(Ordering::SeqCst) >= 1
    });
    // …the next four fill the external lane to its high-water mark…
    let queued: Vec<_> = ext_pids[1..5]
        .iter()
        .map(|&pid| nexus.authorize_async(pid, "poke", &ext).unwrap())
        .collect();
    // …and further external work faults immediately (bounded wait:
    // the ticket never sits behind the stuck authority).
    for &pid in &ext_pids[5..] {
        let t = nexus.authorize_async(pid, "poke", &ext).unwrap();
        assert!(
            matches!(t.try_outcome(), Some(AuthzOutcome::Fault(_))),
            "over-high-water external submission must fault, not wait"
        );
    }
    // Embedded-authority traffic keeps flowing the whole time.
    for i in 0..10 {
        let pid = nexus.spawn(&format!("emb{i}"), b"img");
        assert!(
            nexus.authorize(pid, "read", &object).unwrap(),
            "embedded authorization starved by a stuck external authority"
        );
    }
    let stats = nexus.authz_stats().unwrap();
    assert_eq!(stats.rejected, 2, "{stats:?}");
    assert_eq!(
        entered.load(Ordering::SeqCst),
        1,
        "only the external lane may touch the stuck authority"
    );
    // Un-stick: everything admitted completes with an allow.
    release.store(true, Ordering::SeqCst);
    assert_eq!(stuck.wait(), AuthzOutcome::Allow);
    for t in &queued {
        assert_eq!(t.wait(), AuthzOutcome::Allow);
    }
    let stats = nexus.authz_stats().unwrap();
    assert!(stats.external_batches >= 5, "{stats:?}");
    nexus.stop_authz_pipeline();
}

#[test]
fn stored_proof_leaning_on_external_authority_routes_to_external_lane() {
    // The goal itself never mentions the external principal — only
    // the *stored* proof's leaves do. Classification must still send
    // the request to the external lane, or a stuck authority would
    // wedge embedded workers through exactly this path. (The proof
    // proves the wrong conclusion, so the verdict is a deny — the
    // classifier cares about leaves, not validity.)
    let nexus = booted();
    let owner = nexus.spawn("owner", b"img");
    let obj = ResourceId::new("svc", "mixed");
    nexus.grant_ownership(owner, &obj).unwrap();
    nexus
        .sys_setgoal(owner, obj.clone(), "poke", parse("Gate says open").unwrap())
        .unwrap();
    nexus.register_authority(
        Principal::name("Stale"),
        Arc::new(FnAuthority(|_s: &Formula| true)),
        AuthorityKind::External,
    );
    nexus.start_authz_pipeline(GuardPoolConfig {
        workers: 1,
        external_workers: 1,
        ..Default::default()
    });
    let pid = nexus.spawn("subj", b"img");
    nexus
        .sys_set_proof(
            pid,
            "poke",
            &obj,
            Proof::assume(parse("Stale says fresh").unwrap()),
        )
        .unwrap();
    let t = nexus.authorize_async(pid, "poke", &obj).unwrap();
    assert_eq!(t.wait(), AuthzOutcome::Deny, "wrong conclusion must deny");
    let stats = nexus.authz_stats().unwrap();
    assert!(
        stats.external_batches >= 1,
        "stored-proof external leaves must route to the external lane: {stats:?}"
    );
    nexus.stop_authz_pipeline();
}

#[test]
fn panicking_ticket_callback_leaves_the_pipeline_live() {
    // Regression: a panicking on_complete used to unwind through the
    // completing worker and kill it. The stuck authority holds the
    // ticket pending, so the callback is guaranteed to run on the
    // worker thread (not inline on this one).
    let nexus = booted();
    let (owner, object) = reader_world(&nexus);
    let (ext, ext_pids, release, entered) = stuck_authority_world(&nexus, owner, 2);
    nexus.start_authz_pipeline(GuardPoolConfig {
        workers: 1,
        external_workers: 1,
        ..Default::default()
    });
    let t = nexus.authorize_async(ext_pids[0], "poke", &ext).unwrap();
    spin_until(10, "external worker at the gate", || {
        entered.load(Ordering::SeqCst) >= 1
    });
    t.on_complete(|_| panic!("user callback exploding on the worker"));
    release.store(true, Ordering::SeqCst);
    assert_eq!(t.wait(), AuthzOutcome::Allow);
    // Both lanes survived the panic and still complete work.
    let t2 = nexus.authorize_async(ext_pids[1], "poke", &ext).unwrap();
    assert_eq!(t2.wait(), AuthzOutcome::Allow);
    let pid = nexus.spawn("after", b"img");
    assert!(nexus.authorize(pid, "read", &object).unwrap());
    let stats = nexus.authz_stats().unwrap();
    assert_eq!(stats.callback_panics, 1, "{stats:?}");
    nexus.stop_authz_pipeline();
}

#[test]
fn stop_pipeline_reverts_to_inline() {
    let nexus = booted();
    let (_, object) = reader_world(&nexus);
    nexus.start_authz_pipeline(GuardPoolConfig::default());
    let pid = nexus.spawn("reader", b"img");
    assert!(nexus.authorize(pid, "read", &object).unwrap());
    nexus.stop_authz_pipeline();
    assert!(nexus.authz_stats().is_none());
    // Fresh subject: must evaluate inline, not fault.
    let pid2 = nexus.spawn("reader2", b"img");
    assert!(nexus.authorize(pid2, "read", &object).unwrap());
}

#[test]
fn start_is_idempotent() {
    let nexus = booted();
    let p1 = nexus.start_authz_pipeline(GuardPoolConfig::default());
    let p2 = nexus.start_authz_pipeline(GuardPoolConfig {
        workers: 1,
        ..Default::default()
    });
    assert!(Arc::ptr_eq(&p1, &p2));
}

#[test]
fn heavier_tenants_drain_first_under_backlog() {
    // The default prioritizer consults per-IPD stride weights.
    let nexus = booted();
    let (_, object) = reader_world(&nexus);
    let heavy = nexus.spawn("tenant-heavy", b"img");
    let light = nexus.spawn("tenant-light", b"img");
    nexus.sched().set_weight("tenant-heavy", 8);
    nexus.sched().set_weight("tenant-light", 1);
    // A single worker plus a plug request lets a backlog form.
    let pool = nexus.start_authz_pipeline(GuardPoolConfig {
        workers: 1,
        max_batch: 1,
        ..Default::default()
    });
    let plug_pid = nexus.spawn("plug", b"img");
    let plug = nexus.authorize_async(plug_pid, "read", &object).unwrap();
    // Submit light first, heavy second — distinct ops so they can't
    // coalesce; completion order should favor the heavy tenant. This
    // is inherently timing-dependent, so assert only the invariant
    // that both complete and the scheduler was consulted (weights
    // exist); the authzd unit tests pin the ordering deterministically.
    let t_light = nexus.authorize_async(light, "op_a", &object).unwrap();
    let t_heavy = nexus.authorize_async(heavy, "op_b", &object).unwrap();
    let _ = plug.wait();
    let _ = t_light.wait();
    let _ = t_heavy.wait();
    assert_eq!(nexus.sched().weight("tenant-heavy"), Some(8));
    pool.quiesce();
    let stats = nexus.authz_stats().unwrap();
    assert_eq!(stats.completed, stats.submitted);
}
