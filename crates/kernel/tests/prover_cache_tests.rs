//! Regression tests for the batch prover's memo: the prover-cache
//! analog of PR 1's setgoal sabotage test. A subgoal derivation
//! memoized while a credential was held must never outlive the
//! movement of that credential — neither through the epoch flush
//! (`transfer_label` bumps the label-removal epoch) nor through the
//! fingerprint scoping that guards memo reuse in between.

use nexus_core::ResourceId;
use nexus_kernel::{BootImages, GuardPoolConfig, Nexus, NexusConfig};
use nexus_nal::{parse, Principal};
use nexus_storage::RamDisk;
use nexus_tpm::Tpm;
use std::sync::Arc;

fn boot() -> Nexus {
    let nexus = Nexus::boot(
        Tpm::new_with_seed(0x9807),
        RamDisk::new(),
        &BootImages::standard(),
        NexusConfig::default(),
    )
    .expect("boot");
    // Deterministic prover traffic: every authorize reaches the guard
    // (no decision cache), and every proof is auto-constructed.
    nexus.set_config(NexusConfig {
        decision_cache: false,
        ..NexusConfig::default()
    });
    nexus
}

/// A world with one goal-guarded object whose ground goal
/// `Owner says g` requires a real derivation: a handoff label
/// (`Owner says (Gate speaksfor Owner)`) plus the payload
/// (`Gate says g`) — trivial credential matches never exercise the
/// memo, a delegation chain does.
fn setup(nexus: &Nexus) -> ResourceId {
    let object = ResourceId::new("test", "prover");
    let owner = nexus.spawn("owner", b"img");
    nexus.grant_ownership(owner, &object).unwrap();
    nexus
        .sys_setgoal(owner, object.clone(), "op", parse("Owner says g").unwrap())
        .unwrap();
    object
}

/// Deposit the handoff label that lets `Gate says g` discharge the
/// `Owner says g` goal.
fn grant_handoff(nexus: &Nexus, pid: u64) {
    nexus
        .kernel_label(
            pid,
            Principal::name("Owner"),
            parse("Gate speaksfor Owner").unwrap(),
        )
        .unwrap();
}

#[test]
fn memoized_subgoal_not_reused_after_label_movement() {
    let nexus = boot();
    let object = setup(&nexus);
    let holder = nexus.spawn("holder", b"img");
    let beneficiary = nexus.spawn("beneficiary", b"img");
    grant_handoff(&nexus, holder);
    grant_handoff(&nexus, beneficiary);
    let h = nexus
        .kernel_label(holder, Principal::name("Gate"), parse("g").unwrap())
        .unwrap();
    let base = nexus.guard_prover_stats();

    // Auto-proving succeeds and populates the prover memo.
    assert!(nexus.authorize(holder, "op", &object).unwrap());
    assert!(
        nexus.guard_prover_memo_len() > 0,
        "auto-prove must have memoized its derivation"
    );
    assert_eq!(nexus.guard_prover_stats().proved, base.proved + 1);

    // The credential moves away: the label-removal epoch bumps, and
    // the next auto-prove must flush the memo and fail afresh — a
    // reused derivation here would be the prover-cache version of the
    // setgoal lost-invalidation bug.
    nexus.transfer_label(holder, h, beneficiary).unwrap();
    assert!(
        !nexus.authorize(holder, "op", &object).unwrap(),
        "memoized proof leaked across a label movement"
    );
    assert!(
        nexus.guard_prover_stats().flushes >= 1,
        "epoch movement must flush the prover session: {:?}",
        nexus.guard_prover_stats()
    );
    // The label's new holder proves it instead.
    assert!(nexus.authorize(beneficiary, "op", &object).unwrap());
    // And the original holder stays denied on repeat (refutation memo,
    // same epoch — no further flushes required for correctness).
    assert!(!nexus.authorize(holder, "op", &object).unwrap());
}

#[test]
fn memoized_refutation_not_reused_after_label_addition() {
    // The dual direction: a refutation recorded while the credential
    // was absent must not outlive its *arrival*. Additions bump no
    // epoch — the memo is keyed by credential-set fingerprint, which
    // the new label changes.
    let nexus = boot();
    let object = setup(&nexus);
    let latecomer = nexus.spawn("latecomer", b"img");
    grant_handoff(&nexus, latecomer);
    assert!(!nexus.authorize(latecomer, "op", &object).unwrap());
    nexus
        .kernel_label(latecomer, Principal::name("Gate"), parse("g").unwrap())
        .unwrap();
    assert!(
        nexus.authorize(latecomer, "op", &object).unwrap(),
        "stale refutation served after the credential arrived"
    );
}

#[test]
fn pipeline_batches_share_one_proof_search() {
    // Through the async pipeline: same goal, same label shape — the
    // coalesced batches ride one prover session, so all but the first
    // auto-prove are memo hits.
    let nexus = Arc::new(boot());
    let object = setup(&nexus);
    let pids: Vec<u64> = (0..8)
        .map(|i| {
            let pid = nexus.spawn(&format!("p{i}"), b"img");
            grant_handoff(&nexus, pid);
            nexus
                .kernel_label(pid, Principal::name("Gate"), parse("g").unwrap())
                .unwrap();
            pid
        })
        .collect();
    nexus.start_authz_pipeline(GuardPoolConfig {
        workers: 1,
        ..Default::default()
    });
    let tickets: Vec<_> = (0..32)
        .map(|i| {
            nexus
                .authorize_async(pids[i % pids.len()], "op", &object)
                .unwrap()
        })
        .collect();
    for t in tickets {
        assert!(t.wait().is_allow());
    }
    let pool_stats = nexus.authz_stats().unwrap();
    let prover = nexus.guard_prover_stats();
    assert!(
        prover.memo_hits > 0,
        "32 identical auto-proved requests must share derivations: {prover:?}"
    );
    assert_eq!(
        pool_stats.prover_memo_hits, prover.memo_hits,
        "pool stats must surface the executor's prover memo counters"
    );
    assert!(prover.batch_groups >= 1);
    nexus.stop_authz_pipeline();
}

#[test]
fn pipeline_respects_label_movement_mid_stream() {
    // End-to-end sabotage through the pipeline: authorize, move the
    // label, authorize again — the second verdict must flip even
    // though the first derivation was memoized by the pool's executor.
    let nexus = Arc::new(boot());
    let object = setup(&nexus);
    let holder = nexus.spawn("holder", b"img");
    let sink = nexus.spawn("sink", b"img");
    grant_handoff(&nexus, holder);
    let h = nexus
        .kernel_label(holder, Principal::name("Gate"), parse("g").unwrap())
        .unwrap();
    nexus.start_authz_pipeline(GuardPoolConfig::default());
    assert!(nexus.authorize(holder, "op", &object).unwrap());
    // transfer_label fences in-flight batches before returning.
    nexus.transfer_label(holder, h, sink).unwrap();
    let t = nexus.authorize_async(holder, "op", &object).unwrap();
    assert!(
        !t.wait().is_allow(),
        "pipeline served a memoized proof across a label movement"
    );
    nexus.stop_authz_pipeline();
}
