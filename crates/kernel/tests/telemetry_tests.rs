//! Integration tests for the telemetry layer (ISSUE 7): the unified
//! metrics snapshot, the per-stage latency histograms, and the
//! decision audit journal — in particular that a denied request's
//! journal entry carries the subgoal the prover refuted, on both the
//! inline and the pipelined path.

use nexus_core::ResourceId;
use nexus_kernel::{
    AuditPath, AuditVerdict, BootImages, GuardPoolConfig, Nexus, NexusConfig, ObsConfig,
};
use nexus_nal::{normalize, parse, Principal};
use nexus_storage::RamDisk;
use nexus_tpm::Tpm;
use std::sync::Arc;

fn boot_with(cfg: NexusConfig) -> Arc<Nexus> {
    Arc::new(
        Nexus::boot(
            Tpm::new_with_seed(0x7e1e),
            RamDisk::new(),
            &BootImages::standard(),
            cfg,
        )
        .expect("boot"),
    )
}

/// A world whose conjunctive goal `Owner says g and Owner says h`
/// splits cleanly: `g` is derivable through a Gate delegation, `h`
/// never is — so every deny has a specific refuted subgoal
/// (`Owner says h`) for the journal to carry.
fn conjunctive_world(nexus: &Nexus) -> ResourceId {
    let object = ResourceId::new("test", "telemetry");
    let owner = nexus.spawn("owner", b"img");
    nexus.grant_ownership(owner, &object).unwrap();
    nexus
        .sys_setgoal(
            owner,
            object.clone(),
            "op",
            parse("Owner says g and Owner says h").unwrap(),
        )
        .unwrap();
    object
}

/// Credentials that discharge the `g` half only.
fn grant_g_only(nexus: &Nexus, pid: u64) {
    nexus
        .kernel_label(
            pid,
            Principal::name("Owner"),
            parse("Gate speaksfor Owner").unwrap(),
        )
        .unwrap();
    nexus
        .kernel_label(pid, Principal::name("Gate"), parse("g").unwrap())
        .unwrap();
}

fn assert_refuted_is_owner_says_h(refuted: Option<&str>) {
    let text = refuted.expect("denial must carry its refuted subgoal");
    let got = normalize(&parse(text).expect("refuted subgoal must re-parse"));
    assert_eq!(
        got,
        normalize(&parse("Owner says h").unwrap()),
        "refuted subgoal must be the underivable conjunct, got {text:?}"
    );
}

#[test]
fn inline_denial_journals_the_refuted_subgoal() {
    let nexus = boot_with(NexusConfig::default());
    let object = conjunctive_world(&nexus);
    let pid = nexus.spawn("halfway", b"img");
    grant_g_only(&nexus, pid);
    assert!(!nexus.authorize(pid, "op", &object).unwrap());
    let ev = nexus
        .audit_recent(16)
        .into_iter()
        .find(|e| e.pid == pid && e.verdict == AuditVerdict::Deny)
        .expect("denial must be journaled");
    assert_eq!(ev.path, AuditPath::Inline);
    assert!(!ev.cache_hit);
    assert_eq!(ev.op, "op");
    assert!(ev.stages.prove_ns.is_some());
    assert!(ev.stages.verify_ns.is_some());
    assert!(ev.stages.complete_ns.is_some());
    assert_refuted_is_owner_says_h(ev.refuted.as_deref());
}

#[test]
fn pipelined_denial_journals_the_refuted_subgoal() {
    let nexus = boot_with(NexusConfig::default());
    let object = conjunctive_world(&nexus);
    nexus.start_authz_pipeline(GuardPoolConfig::default());
    let pid = nexus.spawn("halfway", b"img");
    grant_g_only(&nexus, pid);
    assert!(!nexus.authorize(pid, "op", &object).unwrap());
    let ev = nexus
        .audit_recent(64)
        .into_iter()
        .find(|e| e.pid == pid && e.verdict == AuditVerdict::Deny)
        .expect("denial must be journaled");
    assert_eq!(ev.path, AuditPath::Pipeline);
    assert!(ev.stages.queue_wait_ns.is_some());
    assert_refuted_is_owner_says_h(ev.refuted.as_deref());
    // The pool side recorded its spans into the shared histograms.
    let snap = nexus.telemetry_snapshot();
    for stage in ["submit", "queue_wait", "batch_assembly", "complete"] {
        let name = format!("nexus_authz_stage_{stage}_ns");
        let m = snap.get(&name).expect("stage histogram registered");
        match &m.value {
            nexus_obs::SampleValue::Histogram(h) => {
                assert!(h.count > 0, "{name} must have samples");
            }
            other => panic!("{name} must be a histogram, got {other:?}"),
        }
    }
}

#[test]
fn sampled_cache_hits_are_journaled_with_their_span() {
    // shift 0 ⇒ every hit sampled.
    let nexus = boot_with(NexusConfig {
        obs: ObsConfig {
            hit_sample_shift: 0,
            ..ObsConfig::default()
        },
        ..NexusConfig::default()
    });
    let object = conjunctive_world(&nexus);
    let owner_like = nexus.spawn("lucky", b"img");
    grant_g_only(&nexus, owner_like);
    nexus
        .kernel_label(owner_like, Principal::name("Gate"), parse("h").unwrap())
        .unwrap();
    nexus
        .kernel_label(
            owner_like,
            Principal::name("Owner"),
            parse("Gate says h").unwrap(),
        )
        .unwrap();
    // First authorize misses and (if allowed) caches; second hits.
    let first = nexus.authorize(owner_like, "op", &object).unwrap();
    assert!(first, "world must make the full conjunction derivable");
    assert!(nexus.authorize(owner_like, "op", &object).unwrap());
    let hit = nexus
        .audit_recent(16)
        .into_iter()
        .find(|e| e.pid == owner_like && e.path == AuditPath::CacheHit)
        .expect("sampled hit must be journaled");
    assert!(hit.cache_hit);
    assert_eq!(hit.verdict, AuditVerdict::Allow);
    assert!(hit.stages.complete_ns.is_some());
    assert!(hit.refuted.is_none());
}

#[test]
fn disabled_telemetry_records_nothing() {
    let nexus = boot_with(NexusConfig {
        obs: ObsConfig::disabled(),
        ..NexusConfig::default()
    });
    let object = conjunctive_world(&nexus);
    let pid = nexus.spawn("halfway", b"img");
    grant_g_only(&nexus, pid);
    assert!(!nexus.authorize(pid, "op", &object).unwrap());
    assert!(nexus.audit_recent(16).is_empty());
    let snap = nexus.telemetry_snapshot();
    match &snap.get("nexus_telemetry_enabled").unwrap().value {
        nexus_obs::SampleValue::Gauge(v) => assert_eq!(*v, 0),
        other => panic!("enabled flag must be a gauge, got {other:?}"),
    }
    match &snap.get("nexus_authz_stage_complete_ns").unwrap().value {
        nexus_obs::SampleValue::Histogram(h) => assert_eq!(h.count, 0),
        other => panic!("stage metric must be a histogram, got {other:?}"),
    }
    // Counters still collect (they are the stores' own live atomics).
    assert!(snap.get("nexus_dcache_misses_total").is_some());
}

#[test]
fn snapshot_unifies_every_stats_surface_and_renders() {
    let nexus = boot_with(NexusConfig::default());
    let object = conjunctive_world(&nexus);
    nexus.start_authz_pipeline(GuardPoolConfig::default());
    let pid = nexus.spawn("halfway", b"img");
    grant_g_only(&nexus, pid);
    let _ = nexus.authorize(pid, "op", &object).unwrap();
    let snap = nexus.telemetry_snapshot();
    for name in [
        "nexus_telemetry_enabled",
        "nexus_dcache_hits_total",
        "nexus_guard_checks_total",
        "nexus_prover_memo_hits_total",
        "nexus_interpose_invocations_total",
        "nexus_authz_submitted_total",
        "nexus_authz_embedded_depth",
        "nexus_audit_recorded_total",
        "nexus_authz_stage_prove_ns",
    ] {
        assert!(snap.get(name).is_some(), "missing metric {name}");
    }
    let text = snap.render_text();
    assert!(text.contains("# TYPE nexus_dcache_hits_total counter"));
    assert!(text.contains("nexus_authz_stage_prove_ns{quantile=\"0.99\"}"));
    let json = snap.render_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"nexus_guard_checks_total\""));
}

#[test]
fn credential_lifecycle_counts_and_journals() {
    let nexus = boot_with(NexusConfig::default());
    let analyzer = nexus.spawn("analyzer", b"analyzer-img");
    let subject = nexus.spawn("subject", b"subject-img");
    let subject_prin = nexus.principal(subject).unwrap();

    // Mint, refuse, revoke — through the kernel surface the attest
    // analyzer uses.
    let stmt = nexus_nal::Formula::pred("panic_free", vec![nexus_nal::Term::Prin(subject_prin)]);
    let h = nexus.mint_credential(analyzer, subject, stmt).unwrap();
    nexus
        .refuse_credential(analyzer, subject, "no_unsafe", "unguarded deref of v3")
        .unwrap();
    nexus.revoke_credential(subject, h).unwrap();

    let stats = nexus.attest_stats();
    assert_eq!(stats.credentials_minted, 1);
    assert_eq!(stats.credentials_refused, 1);
    assert_eq!(stats.credentials_revoked, 1);

    // The same counts surface in the unified snapshot.
    let snap = nexus.telemetry_snapshot();
    for (name, want) in [
        ("nexus_attest_minted_total", 1),
        ("nexus_attest_refused_total", 1),
        ("nexus_attest_revoked_total", 1),
    ] {
        match &snap.get(name).expect("attest counter registered").value {
            nexus_obs::SampleValue::Counter(v) => assert_eq!(*v, want, "{name}"),
            other => panic!("{name} must be a counter, got {other:?}"),
        }
    }

    // All three journal as Analyzer-path events on the subject; the
    // refusal carries its witness.
    let events = nexus.audit_recent(16);
    let mine: Vec<_> = events
        .iter()
        .filter(|e| e.path == AuditPath::Analyzer && e.pid == subject)
        .collect();
    assert!(mine
        .iter()
        .any(|e| e.verdict == AuditVerdict::Mint && e.op == "panic_free"));
    assert!(mine.iter().any(|e| e.verdict == AuditVerdict::Refuse
        && e.op == "no_unsafe"
        && e.refuted.as_deref() == Some("unguarded deref of v3")));
    assert!(mine
        .iter()
        .any(|e| e.verdict == AuditVerdict::Revoke && e.op == "panic_free"));

    // Revoking an already-deleted handle is an error, not a double
    // count.
    assert!(nexus.revoke_credential(subject, h).is_err());
    assert_eq!(nexus.attest_stats().credentials_revoked, 1);
}

#[test]
fn set_config_toggles_telemetry_at_runtime() {
    let nexus = boot_with(NexusConfig::default());
    let object = conjunctive_world(&nexus);
    let pid = nexus.spawn("halfway", b"img");
    grant_g_only(&nexus, pid);
    nexus.set_config(NexusConfig {
        obs: ObsConfig::disabled(),
        ..NexusConfig::default()
    });
    assert!(!nexus.authorize(pid, "op", &object).unwrap());
    // World setup (setgoal etc.) may have journaled while telemetry
    // was still on; what matters is that *this* denial did not.
    assert!(
        !nexus.audit_recent(64).iter().any(|e| e.pid == pid),
        "no event may be journaled while telemetry is off"
    );
    nexus.set_config(NexusConfig::default());
    let fresh = nexus.spawn("fresh", b"img");
    grant_g_only(&nexus, fresh);
    assert!(!nexus.authorize(fresh, "op", &object).unwrap());
    assert!(
        nexus
            .audit_recent(64)
            .iter()
            .any(|e| e.pid == fresh && e.verdict == AuditVerdict::Deny),
        "re-enabled telemetry must journal again"
    );
}
