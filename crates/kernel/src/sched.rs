//! Proportional-share CPU scheduling (stride scheduling).
//!
//! §4.1's resource attestation: the cloud provider runs a
//! proportional-share scheduler whose internal state — the weight
//! assigned to each tenant — is exported through introspection, so a
//! labeling function can vouch that a tenant actually receives its
//! contracted fraction of the CPU. This turns an SLA from an
//! end-to-end measurement problem into a checkable label.
//!
//! Internally synchronized (the PR-1 kernel convention): every method
//! takes `&self`, so the scheduler can be consulted concurrently —
//! e.g. by the authorization pipeline's batch prioritizer reading
//! per-IPD weights while the dispatcher advances passes.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

const STRIDE_ONE: u64 = 1 << 20;

#[derive(Debug, Clone)]
struct Client {
    weight: u64,
    stride: u64,
    pass: u64,
    /// Quanta received.
    usage: u64,
}

#[derive(Debug, Default)]
struct Inner {
    clients: HashMap<String, Client>,
    quanta: u64,
}

/// A stride scheduler over named clients (tenants).
#[derive(Default)]
pub struct StrideScheduler {
    inner: Mutex<Inner>,
}

impl fmt::Debug for StrideScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("StrideScheduler")
            .field("clients", &inner.clients)
            .field("quanta", &inner.quanta)
            .finish()
    }
}

impl StrideScheduler {
    /// Empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or re-weight) a client. Weight must be ≥ 1.
    pub fn set_weight(&self, name: &str, weight: u64) {
        let weight = weight.max(1);
        let stride = STRIDE_ONE / weight;
        let mut inner = self.inner.lock();
        // New clients start at the current minimum pass so they don't
        // monopolize the CPU catching up.
        let min_pass = inner.clients.values().map(|c| c.pass).min().unwrap_or(0);
        let entry = inner.clients.entry(name.to_string()).or_insert(Client {
            weight,
            stride,
            pass: min_pass,
            usage: 0,
        });
        entry.weight = weight;
        entry.stride = stride;
    }

    /// Remove a client.
    pub fn remove(&self, name: &str) -> bool {
        self.inner.lock().clients.remove(name).is_some()
    }

    /// Dispatch the next quantum: the client with the minimum pass
    /// runs and its pass advances by its stride. (Deliberately named
    /// like — but not implementing — `Iterator::next`: dispatching a
    /// quantum mutates scheduler state and is not iteration.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&self) -> Option<String> {
        let mut inner = self.inner.lock();
        let name = inner
            .clients
            .iter()
            .min_by_key(|(n, c)| (c.pass, n.as_str().to_string()))
            .map(|(n, _)| n.clone())?;
        let c = inner.clients.get_mut(&name).expect("chosen above");
        c.pass += c.stride;
        c.usage += 1;
        inner.quanta += 1;
        Some(name)
    }

    /// A client's weight.
    pub fn weight(&self, name: &str) -> Option<u64> {
        self.inner.lock().clients.get(name).map(|c| c.weight)
    }

    /// A client's received quanta.
    pub fn usage(&self, name: &str) -> Option<u64> {
        self.inner.lock().clients.get(name).map(|c| c.usage)
    }

    /// The fraction of total weight assigned to `name` — what the
    /// resource-attestation labeling function reads out.
    pub fn share(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock();
        let total: u64 = inner.clients.values().map(|c| c.weight).sum();
        let w = inner.clients.get(name).map(|c| c.weight)?;
        if total == 0 {
            return None;
        }
        Some(w as f64 / total as f64)
    }

    /// All client names, sorted.
    pub fn clients(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.lock().clients.keys().cloned().collect();
        v.sort();
        v
    }

    /// True if no clients are registered (lets hot paths skip weight
    /// lookups entirely when proportional share is unused).
    pub fn is_idle(&self) -> bool {
        self.inner.lock().clients.is_empty()
    }

    /// Total quanta dispatched.
    pub fn total_quanta(&self) -> u64 {
        self.inner.lock().quanta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_allocation() {
        let s = StrideScheduler::new();
        s.set_weight("a", 3);
        s.set_weight("b", 1);
        for _ in 0..4000 {
            s.next();
        }
        let ua = s.usage("a").unwrap() as f64;
        let ub = s.usage("b").unwrap() as f64;
        let ratio = ua / ub;
        assert!(
            (ratio - 3.0).abs() < 0.05,
            "3:1 weights must yield ~3:1 usage, got {ratio}"
        );
    }

    #[test]
    fn shares_reflect_weights() {
        let s = StrideScheduler::new();
        s.set_weight("a", 1);
        s.set_weight("b", 1);
        s.set_weight("c", 2);
        assert!((s.share("c").unwrap() - 0.5).abs() < 1e-9);
        assert!((s.share("a").unwrap() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn late_joiner_not_starved_nor_dominant() {
        let s = StrideScheduler::new();
        s.set_weight("a", 1);
        for _ in 0..1000 {
            s.next();
        }
        s.set_weight("b", 1);
        for _ in 0..1000 {
            s.next();
        }
        let ub = s.usage("b").unwrap();
        assert!(
            (400..=600).contains(&ub),
            "late joiner should get ~half of remaining quanta, got {ub}"
        );
    }

    #[test]
    fn empty_scheduler_idles() {
        let s = StrideScheduler::new();
        assert!(s.is_idle());
        assert_eq!(s.next(), None);
    }

    #[test]
    fn reweight_takes_effect() {
        let s = StrideScheduler::new();
        s.set_weight("a", 1);
        s.set_weight("b", 1);
        for _ in 0..100 {
            s.next();
        }
        s.set_weight("a", 9);
        let before_a = s.usage("a").unwrap();
        let before_b = s.usage("b").unwrap();
        for _ in 0..1000 {
            s.next();
        }
        let da = s.usage("a").unwrap() - before_a;
        let db = s.usage("b").unwrap() - before_b;
        let ratio = da as f64 / db as f64;
        assert!((ratio - 9.0).abs() < 1.0, "ratio after reweight: {ratio}");
    }

    #[test]
    fn remove_client() {
        let s = StrideScheduler::new();
        s.set_weight("a", 1);
        assert!(s.remove("a"));
        assert!(!s.remove("a"));
        assert_eq!(s.next(), None);
    }

    #[test]
    fn shared_dispatch_across_threads() {
        // &self dispatch: total quanta add up when many threads pull.
        let s = std::sync::Arc::new(StrideScheduler::new());
        s.set_weight("a", 2);
        s.set_weight("b", 1);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..300 {
                    s.next();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.total_quanta(), 4 * 300);
        assert_eq!(s.usage("a").unwrap() + s.usage("b").unwrap(), 4 * 300);
    }
}
