//! RAM filesystem.
//!
//! The Nexus splits filesystem functionality across the kernel core
//! (namespace) and user-level servers (stores); here a single RAM
//! store provides the mechanism, while authorization — per-(file,
//! operation) goal formulas — is applied by the `Nexus` syscall layer
//! that wraps it. On creation, the file server deposits the ownership
//! label `FS says client speaksfor FS.<file>` into the creator's
//! labelstore (§2.6), which is what lets the creator discharge the
//! default policy and set goals later.

use crate::error::KernelError;
use std::collections::{BTreeMap, HashMap};

/// The file server's principal name.
pub const FS_PRINCIPAL: &str = "FS";

#[derive(Debug, Clone)]
struct FileNode {
    data: Vec<u8>,
    owner: u64,
}

#[derive(Debug, Clone)]
struct OpenFile {
    path: String,
    offset: usize,
}

/// An in-memory filesystem with POSIX-ish fd semantics.
#[derive(Debug, Default)]
pub struct RamFs {
    files: BTreeMap<String, FileNode>,
    fds: HashMap<u64, OpenFile>,
    next_fd: u64,
}

impl RamFs {
    /// Empty filesystem.
    pub fn new() -> Self {
        RamFs {
            next_fd: 3, // 0-2 conventionally reserved
            ..Default::default()
        }
    }

    /// Create an empty file owned by `owner`. Fails if it exists.
    pub fn create(&mut self, path: &str, owner: u64) -> Result<(), KernelError> {
        if self.files.contains_key(path) {
            return Err(KernelError::FileExists(path.to_string()));
        }
        self.files.insert(
            path.to_string(),
            FileNode {
                data: Vec::new(),
                owner,
            },
        );
        Ok(())
    }

    /// Open an existing file; returns a descriptor.
    pub fn open(&mut self, path: &str) -> Result<u64, KernelError> {
        if !self.files.contains_key(path) {
            return Err(KernelError::NoSuchFile(path.to_string()));
        }
        let fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(
            fd,
            OpenFile {
                path: path.to_string(),
                offset: 0,
            },
        );
        Ok(fd)
    }

    /// Close a descriptor.
    pub fn close(&mut self, fd: u64) -> Result<(), KernelError> {
        self.fds
            .remove(&fd)
            .map(|_| ())
            .ok_or(KernelError::BadFd(fd))
    }

    /// Path behind a descriptor.
    pub fn path_of(&self, fd: u64) -> Result<&str, KernelError> {
        self.fds
            .get(&fd)
            .map(|o| o.path.as_str())
            .ok_or(KernelError::BadFd(fd))
    }

    /// Read up to `n` bytes at the descriptor's offset.
    pub fn read(&mut self, fd: u64, n: usize) -> Result<Vec<u8>, KernelError> {
        let open = self.fds.get_mut(&fd).ok_or(KernelError::BadFd(fd))?;
        let node = self
            .files
            .get(&open.path)
            .ok_or_else(|| KernelError::NoSuchFile(open.path.clone()))?;
        let start = open.offset.min(node.data.len());
        let end = (start + n).min(node.data.len());
        open.offset = end;
        Ok(node.data[start..end].to_vec())
    }

    /// Write at the descriptor's offset (extending the file).
    pub fn write(&mut self, fd: u64, data: &[u8]) -> Result<usize, KernelError> {
        let open = self.fds.get_mut(&fd).ok_or(KernelError::BadFd(fd))?;
        let node = self
            .files
            .get_mut(&open.path)
            .ok_or_else(|| KernelError::NoSuchFile(open.path.clone()))?;
        let end = open.offset + data.len();
        if node.data.len() < end {
            node.data.resize(end, 0);
        }
        node.data[open.offset..end].copy_from_slice(data);
        open.offset = end;
        Ok(data.len())
    }

    /// Overwrite a whole file.
    pub fn write_all(&mut self, path: &str, data: &[u8]) -> Result<(), KernelError> {
        let node = self
            .files
            .get_mut(path)
            .ok_or_else(|| KernelError::NoSuchFile(path.to_string()))?;
        node.data = data.to_vec();
        Ok(())
    }

    /// Read a whole file.
    pub fn read_all(&self, path: &str) -> Result<Vec<u8>, KernelError> {
        self.files
            .get(path)
            .map(|n| n.data.clone())
            .ok_or_else(|| KernelError::NoSuchFile(path.to_string()))
    }

    /// Delete a file.
    pub fn unlink(&mut self, path: &str) -> Result<(), KernelError> {
        self.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| KernelError::NoSuchFile(path.to_string()))
    }

    /// Owner pid of a file.
    pub fn owner(&self, path: &str) -> Result<u64, KernelError> {
        self.files
            .get(path)
            .map(|n| n.owner)
            .ok_or_else(|| KernelError::NoSuchFile(path.to_string()))
    }

    /// Does the path exist?
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Paths with a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// File size.
    pub fn size(&self, path: &str) -> Result<usize, KernelError> {
        self.files
            .get(path)
            .map(|n| n.data.len())
            .ok_or_else(|| KernelError::NoSuchFile(path.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_open_write_read_close() {
        let mut fs = RamFs::new();
        fs.create("/a", 1).unwrap();
        let fd = fs.open("/a").unwrap();
        assert_eq!(fs.write(fd, b"hello").unwrap(), 5);
        fs.close(fd).unwrap();
        let fd = fs.open("/a").unwrap();
        assert_eq!(fs.read(fd, 3).unwrap(), b"hel");
        assert_eq!(fs.read(fd, 10).unwrap(), b"lo");
        assert_eq!(fs.read(fd, 10).unwrap(), b"");
        fs.close(fd).unwrap();
    }

    #[test]
    fn create_duplicate_rejected() {
        let mut fs = RamFs::new();
        fs.create("/a", 1).unwrap();
        assert!(matches!(
            fs.create("/a", 2),
            Err(KernelError::FileExists(_))
        ));
    }

    #[test]
    fn bad_fd_and_missing_file() {
        let mut fs = RamFs::new();
        assert!(matches!(fs.open("/nope"), Err(KernelError::NoSuchFile(_))));
        assert!(matches!(fs.read(99, 1), Err(KernelError::BadFd(99))));
        assert!(matches!(fs.close(99), Err(KernelError::BadFd(99))));
    }

    #[test]
    fn ownership_and_unlink() {
        let mut fs = RamFs::new();
        fs.create("/a", 7).unwrap();
        assert_eq!(fs.owner("/a").unwrap(), 7);
        fs.unlink("/a").unwrap();
        assert!(!fs.exists("/a"));
        assert!(fs.unlink("/a").is_err());
    }

    #[test]
    fn whole_file_helpers_and_list() {
        let mut fs = RamFs::new();
        fs.create("/d/x", 1).unwrap();
        fs.create("/d/y", 1).unwrap();
        fs.write_all("/d/x", b"data").unwrap();
        assert_eq!(fs.read_all("/d/x").unwrap(), b"data");
        assert_eq!(fs.size("/d/x").unwrap(), 4);
        assert_eq!(fs.list("/d/"), vec!["/d/x", "/d/y"]);
    }

    #[test]
    fn sparse_write_extends_with_zeros() {
        let mut fs = RamFs::new();
        fs.create("/a", 1).unwrap();
        let fd = fs.open("/a").unwrap();
        fs.write(fd, b"ab").unwrap();
        let fd2 = fs.open("/a").unwrap();
        fs.read(fd2, 1).unwrap();
        fs.write(fd2, b"XY").unwrap(); // at offset 1
        assert_eq!(fs.read_all("/a").unwrap(), b"aXY");
    }
}
