//! Isolated protection domains (IPDs) — Nexus processes.
//!
//! Every process is a subprincipal of the kernel: statements by
//! process 23 are attributed, fully qualified, to
//! `HW.kernel.process23` (§2.1 — the prefix is elided for clarity
//! where unambiguous). Each IPD carries its own labelstore and the set
//! of system calls it has relinquished (the web server in §4.1 drops
//! everything but IPC after initialization).

use crate::error::KernelError;
use nexus_core::LabelStore;
use nexus_nal::Principal;
use std::collections::{HashMap, HashSet};

/// A process.
pub struct Ipd {
    /// Process id.
    pub pid: u64,
    /// Human-readable name (e.g. `webserver`).
    pub name: String,
    /// Parent pid (0 = kernel).
    pub parent: u64,
    /// Launch-time hash of the binary (for hash-based labels).
    pub launch_hash: nexus_tpm::Digest,
    /// The process's labelstore.
    pub labelstore: LabelStore,
    /// System calls the process has permanently relinquished.
    pub relinquished: HashSet<&'static str>,
    /// Application-published introspection keys (`/proc/app/<pid>/…`).
    pub published: HashMap<String, String>,
    /// Alive?
    pub alive: bool,
}

impl Ipd {
    /// The principal name the kernel attributes this process's
    /// statements to: `/proc/ipd/<pid>`.
    pub fn principal(&self) -> Principal {
        Principal::name(format!("/proc/ipd/{}", self.pid))
    }
}

/// The process table.
#[derive(Default)]
pub struct IpdTable {
    ipds: HashMap<u64, Ipd>,
    next_pid: u64,
}

impl IpdTable {
    /// Empty table; pid 0 is reserved for the kernel.
    pub fn new() -> Self {
        IpdTable {
            ipds: HashMap::new(),
            next_pid: 1,
        }
    }

    /// Spawn a process from a binary image.
    pub fn spawn(&mut self, name: &str, parent: u64, image: &[u8]) -> u64 {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.ipds.insert(
            pid,
            Ipd {
                pid,
                name: name.to_string(),
                parent,
                launch_hash: nexus_tpm::hash(image),
                labelstore: LabelStore::new(),
                relinquished: HashSet::new(),
                published: HashMap::new(),
                alive: true,
            },
        );
        pid
    }

    /// Terminate a process.
    pub fn kill(&mut self, pid: u64) -> Result<(), KernelError> {
        match self.ipds.get_mut(&pid) {
            Some(ipd) => {
                ipd.alive = false;
                Ok(())
            }
            None => Err(KernelError::NoSuchIpd(pid)),
        }
    }

    /// Look up a process.
    pub fn get(&self, pid: u64) -> Result<&Ipd, KernelError> {
        self.ipds
            .get(&pid)
            .filter(|i| i.alive)
            .ok_or(KernelError::NoSuchIpd(pid))
    }

    /// Look up a process mutably.
    pub fn get_mut(&mut self, pid: u64) -> Result<&mut Ipd, KernelError> {
        self.ipds
            .get_mut(&pid)
            .filter(|i| i.alive)
            .ok_or(KernelError::NoSuchIpd(pid))
    }

    /// Parent pid.
    pub fn ppid(&self, pid: u64) -> Result<u64, KernelError> {
        Ok(self.get(pid)?.parent)
    }

    /// All live pids, ascending.
    pub fn pids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .ipds
            .values()
            .filter(|i| i.alive)
            .map(|i| i.pid)
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of live processes.
    pub fn len(&self) -> usize {
        self.ipds.values().filter(|i| i.alive).count()
    }

    /// True if no live processes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_assigns_increasing_pids() {
        let mut t = IpdTable::new();
        let a = t.spawn("a", 0, b"img-a");
        let b = t.spawn("b", a, b"img-b");
        assert!(b > a);
        assert_eq!(t.ppid(b).unwrap(), a);
        assert_eq!(t.get(a).unwrap().name, "a");
    }

    #[test]
    fn principal_names_follow_proc_convention() {
        let mut t = IpdTable::new();
        let pid = t.spawn("x", 0, b"");
        assert_eq!(
            t.get(pid).unwrap().principal().to_string(),
            format!("/proc/ipd/{pid}")
        );
    }

    #[test]
    fn launch_hash_distinguishes_binaries() {
        let mut t = IpdTable::new();
        let a = t.spawn("a", 0, b"one");
        let b = t.spawn("b", 0, b"two");
        let c = t.spawn("c", 0, b"one");
        assert_ne!(t.get(a).unwrap().launch_hash, t.get(b).unwrap().launch_hash);
        assert_eq!(t.get(a).unwrap().launch_hash, t.get(c).unwrap().launch_hash);
    }

    #[test]
    fn kill_hides_process() {
        let mut t = IpdTable::new();
        let a = t.spawn("a", 0, b"");
        t.kill(a).unwrap();
        assert!(t.get(a).is_err());
        assert!(t.pids().is_empty());
        assert!(t.kill(99).is_err());
    }

    #[test]
    fn relinquish_tracked() {
        let mut t = IpdTable::new();
        let a = t.spawn("a", 0, b"");
        t.get_mut(a).unwrap().relinquished.insert("open");
        assert!(t.get(a).unwrap().relinquished.contains("open"));
    }
}
