//! The Nexus kernel: boot, system calls, and the authorization path.
//!
//! This is the glue that realizes Figure 1 of the paper: a call on an
//! object is (1) vectored through the redirector (interpositioning),
//! (2) looked up in the kernel decision cache, (3) on a miss, sent to
//! the guard with the stored or supplied proof and the subject's
//! labels, and (4) permitted iff the proof discharges the goal.
//!
//! ## Concurrency
//!
//! The kernel is shared: every system-call entry point takes `&self`,
//! so an `Arc<Nexus>` serves syscalls from many threads at once.
//! The authorization *read* path is lock-free: a decision-cache hit
//! is a seqlock probe (atomic loads, no lock word), the goal/proof
//! stores publish epoch-stamped snapshots readers never block on, and
//! the submission path resolves the subject principal and label shape
//! through the kernel's own published [`Snapshot`] index (`ipd_hot`)
//! rather than the IPD table's lock. The remaining subsystems sit
//! behind their own locks. Lock discipline: locks are leaf-scoped —
//! no method holds one subsystem's lock while acquiring another's,
//! except `transfer_label` (one table, one lock) and `fs_server_hop`
//! (holds the IPC lock across the modeled client-server round trip so
//! concurrent hops cannot steal each other's replies).
//! `classify_external` inspects the goal/proof stores' published
//! snapshots (no lock) while querying the authority registry's read
//! lock.
//!
//! Because readers no longer hold locks, consistency is proven *after*
//! the fact: evaluation captures a `ReadStamp` — the (goal, proof,
//! label-removal) epoch triple plus the goal/proof snapshot
//! *publication versions* — before reading any store, and re-validates
//! it before acting. The epoch half catches writers that completed;
//! the version half catches a writer that had bumped its epoch but not
//! yet published when the reader sampled the store (writers bump
//! first, then publish). Decision-cache fills re-run that validation
//! *inside* the cache's subregion writer lock
//! (`DecisionCache::insert_if`), so a concurrent `setgoal`'s
//! invalidation can never be overwritten by a stale decision — the
//! invalidation either observes the fill and clears it, or the fill
//! observes the stamp movement and aborts.

use crate::error::KernelError;
use crate::fs::{RamFs, FS_PRINCIPAL};
use crate::interpose::{ChainOutcome, Interceptor, IpcCall, MonitorLevel, Redirector};
use crate::ipc::IpcTable;
use crate::ipd::IpdTable;
use crate::sched::StrideScheduler;
use nexus_authzd::{
    AuthzOutcome, AuthzRequest, AuthzTicket, BatchExecutor, BatchKey, GuardPool, GuardPoolConfig,
    PoolStats,
};
use nexus_core::{
    AccessRequest, Authority, AuthorityKind, AuthorityRegistry, CacheKey, Certificate,
    DecisionCache, DecisionCacheConfig, GoalStore, Guard, KernelSigner, Label, LabelHandle, OpName,
    ProofStore, ResourceId, Snapshot,
};
use nexus_nal::{prove, BatchGoal, Formula, Principal, Proof, ProverConfig, Term};
use nexus_obs::{
    event as audit_event, AuditEvent, AuditJournal, AuditPath, AuditVerdict, MetricsRegistry,
    ObsConfig, Sampler, Stage, StageTimers, TelemetrySnapshot,
};
use nexus_storage::{RamDisk, SsrManager, StorageError, VdirTable, VkeyTable};
use nexus_tpm::Tpm;
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

/// The measured boot chain (§3.4): firmware, boot loader, kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootImages {
    /// BIOS/firmware image.
    pub bios: Vec<u8>,
    /// Boot loader image.
    pub loader: Vec<u8>,
    /// Nexus kernel image.
    pub kernel: Vec<u8>,
}

impl BootImages {
    /// The stock images used across tests and benchmarks.
    pub fn standard() -> Self {
        BootImages {
            bios: b"nexus-bios-v1".to_vec(),
            loader: b"nexus-loader-v1".to_vec(),
            kernel: b"nexus-kernel-v1".to_vec(),
        }
    }
}

/// Kernel configuration switches (used by the evaluation harness to
/// reproduce the paper's ablations).
#[derive(Debug, Clone, Copy)]
pub struct NexusConfig {
    /// Route system calls through the redirector ("Nexus"); disabling
    /// this gives the "Nexus bare" rows of Table 1.
    pub interpose_syscalls: bool,
    /// Enable the kernel decision cache (Figure 4 solid vs dashed).
    pub decision_cache: bool,
    /// Let the kernel attempt proof construction from the subject's
    /// labels when no proof is stored or supplied.
    pub auto_prove: bool,
    /// Route auto-proving through the guard's persistent batch-prover
    /// session (one `ProofSearch` memo shared by each coalesced batch
    /// and across batches within a label epoch). Disabling it restores
    /// the legacy one-shot search per request — kept reachable for the
    /// `fig9-prover` comparison benchmark.
    pub batch_prover: bool,
    /// Enforce goal formulas on filesystem operations (Figure 8's
    /// access-control column benchmarks toggle this).
    pub authorize_fs: bool,
    /// Telemetry (stage timers, audit journal, cache-hit sampling).
    /// `enabled` takes effect immediately on [`Nexus::set_config`];
    /// the capacity/sampling knobs apply at boot.
    pub obs: ObsConfig,
}

impl Default for NexusConfig {
    fn default() -> Self {
        NexusConfig {
            interpose_syscalls: true,
            decision_cache: true,
            auto_prove: true,
            batch_prover: true,
            authorize_fs: true,
            obs: ObsConfig::default(),
        }
    }
}

/// System calls (the Table 1 set plus label/goal/proof management).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Syscall {
    /// Empty call (overhead measurement).
    Null,
    /// Parent pid.
    GetPpid,
    /// Kernel clock.
    GetTimeOfDay,
    /// Scheduler yield.
    Yield,
    /// Open a file.
    Open(String),
    /// Close a descriptor.
    Close(u64),
    /// Read from a descriptor.
    Read(u64, usize),
    /// Write to a descriptor.
    Write(u64, Vec<u8>),
}

impl Syscall {
    /// The operation name used for relinquishment and interposition.
    pub fn name(&self) -> &'static str {
        match self {
            Syscall::Null => "null",
            Syscall::GetPpid => "getppid",
            Syscall::GetTimeOfDay => "gettimeofday",
            Syscall::Yield => "yield",
            Syscall::Open(_) => "open",
            Syscall::Close(_) => "close",
            Syscall::Read(..) => "read",
            Syscall::Write(..) => "write",
        }
    }
}

/// System call results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysRet {
    /// No value.
    Unit,
    /// Integer result.
    Int(u64),
    /// Byte result.
    Data(Vec<u8>),
}

/// Port number of the syscall channel in the redirector table.
pub const SYSCALL_CHANNEL: u64 = 0;

/// The kernel. `Send + Sync`: share it as `Arc<Nexus>` and call
/// system calls from as many threads as you like.
pub struct Nexus {
    /// The platform TPM (serialized like the real single-chip device).
    tpm: Mutex<Tpm>,
    /// The kernel's signing identity (NK / NBK); immutable after boot.
    signer: KernelSigner,
    /// Secondary storage.
    disk: Mutex<RamDisk>,
    /// Virtual data integrity registers.
    vdirs: Mutex<VdirTable>,
    /// Virtual keys.
    vkeys: Mutex<VkeyTable>,
    /// Secure storage regions.
    ssrs: Mutex<SsrManager>,
    /// IPC ports.
    ipc: Mutex<IpcTable>,
    /// Interposition table (internally synchronized).
    redirector: Redirector,
    /// Proportional-share scheduler (internally synchronized).
    sched: StrideScheduler,
    /// The asynchronous authorization pipeline, once started.
    authzd: RwLock<Option<Arc<GuardPool>>>,
    ipds: RwLock<IpdTable>,
    /// Lock-free index over the hot per-process facts the submission
    /// path needs — principal, scheduler name, live label-shape word —
    /// published on every spawn so `route_authz` and the pipeline's
    /// prioritizer never take the `ipds` lock per request. Processes
    /// are never deleted (there is no kill), so an entry present here
    /// is authoritative; an absent one falls back to the locked table.
    ipd_hot: Snapshot<HashMap<u64, IpdHot>>,
    goals: GoalStore,
    proofs: ProofStore,
    dcache: DecisionCache,
    guard: Guard,
    authorities: AuthorityRegistry,
    fs: Mutex<RamFs>,
    cfg: RwLock<NexusConfig>,
    clock: AtomicU64,
    /// Bumped whenever a label is *removed* from a labelstore
    /// (additions can only turn uncached denies into allows, but a
    /// removal can falsify a cached allow whose credential matching
    /// relied on the departed label — and the decision cache has no
    /// per-label invalidation hook).
    label_removal_epoch: AtomicU64,
    first_boot: bool,
    fs_port: u64,
    fs_reply_port: u64,
    guard_upcalls: AtomicU64,
    /// Telemetry composite: stage timers (shared by `Arc` with the
    /// pipeline), decision audit journal, and the cache-hit sampler.
    telemetry: KernelTelemetry,
    /// Counters for the analyzer→credential path (ISSUE 8).
    attest: AttestCounters,
    /// Counters for the replicated-credential path (ISSUE 9).
    dist: DistCounters,
}

impl Nexus {
    /// Boot the Nexus: measure the chain into the PCRs, take TPM
    /// ownership on first boot or recover attested storage state on
    /// later boots (aborting on tamper), and mint the kernel identity.
    pub fn boot(
        mut tpm: Tpm,
        mut disk: RamDisk,
        images: &BootImages,
        cfg: NexusConfig,
    ) -> Result<Nexus, KernelError> {
        tpm.power_cycle();
        tpm.pcrs_mut().extend(0, &images.bios);
        tpm.pcrs_mut().extend(1, &images.loader);
        tpm.pcrs_mut().extend(2, &images.kernel);
        let first_boot = !tpm.is_owned();
        let vdirs = if first_boot {
            tpm.take_ownership()
                .map_err(|e| KernelError::BootFailure(e.to_string()))?;
            VdirTable::init_first_boot(&mut disk, &mut tpm)
                .map_err(|e| KernelError::BootFailure(e.to_string()))?
        } else {
            VdirTable::recover(&disk, &tpm).map_err(|e| KernelError::BootFailure(e.to_string()))?
        };
        let ssrs = match SsrManager::open(&disk, &vdirs) {
            Ok(s) => s,
            Err(StorageError::NoSuchFile(_)) => SsrManager::new(),
            Err(e) => return Err(KernelError::BootFailure(e.to_string())),
        };
        let signer = KernelSigner::generate(&mut tpm)
            .map_err(|e| KernelError::BootFailure(e.to_string()))?;
        let mut ipc = IpcTable::new();
        let (fs_port, _) = ipc.create_port(0);
        let (fs_reply_port, _) = ipc.create_port(0);
        Ok(Nexus {
            tpm: Mutex::new(tpm),
            signer,
            disk: Mutex::new(disk),
            vdirs: Mutex::new(vdirs),
            vkeys: Mutex::new(VkeyTable::new()),
            ssrs: Mutex::new(ssrs),
            ipc: Mutex::new(ipc),
            redirector: Redirector::new(),
            sched: StrideScheduler::new(),
            authzd: RwLock::new(None),
            ipds: RwLock::new(IpdTable::new()),
            ipd_hot: Snapshot::new(HashMap::new()),
            goals: GoalStore::new(),
            proofs: ProofStore::new(),
            dcache: DecisionCache::new(DecisionCacheConfig::default()),
            guard: Guard::new(),
            authorities: AuthorityRegistry::new(),
            fs: Mutex::new(RamFs::new()),
            cfg: RwLock::new(cfg),
            clock: AtomicU64::new(0),
            label_removal_epoch: AtomicU64::new(0),
            first_boot,
            fs_port,
            fs_reply_port,
            guard_upcalls: AtomicU64::new(0),
            telemetry: KernelTelemetry::new(&cfg.obs),
            attest: AttestCounters::default(),
            dist: DistCounters::default(),
        })
    }

    /// Boot with default config.
    pub fn boot_default() -> Result<Nexus, KernelError> {
        Nexus::boot(
            Tpm::new_with_seed(0xeade),
            RamDisk::new(),
            &BootImages::standard(),
            NexusConfig::default(),
        )
    }

    /// Was this the first boot (TPM ownership taken)?
    pub fn first_boot(&self) -> bool {
        self.first_boot
    }

    /// Current configuration (a copy).
    pub fn config(&self) -> NexusConfig {
        *self.cfg.read()
    }

    /// Mutate configuration (benchmark harness). The telemetry master
    /// switch propagates immediately — the stage timers' flag is the
    /// single gate every recording site (kernel- and pool-side)
    /// checks.
    pub fn set_config(&self, cfg: NexusConfig) {
        self.telemetry.stages.set_enabled(cfg.obs.enabled);
        *self.cfg.write() = cfg;
    }

    // ---- subsystem access ----

    /// The platform TPM.
    pub fn tpm(&self) -> MutexGuard<'_, Tpm> {
        self.tpm.lock()
    }

    /// The kernel's signing identity.
    pub fn signer(&self) -> &KernelSigner {
        &self.signer
    }

    /// Secondary storage.
    pub fn disk(&self) -> MutexGuard<'_, RamDisk> {
        self.disk.lock()
    }

    /// Virtual data integrity registers.
    pub fn vdirs(&self) -> MutexGuard<'_, VdirTable> {
        self.vdirs.lock()
    }

    /// Virtual keys.
    pub fn vkeys(&self) -> MutexGuard<'_, VkeyTable> {
        self.vkeys.lock()
    }

    /// Secure storage regions.
    pub fn ssrs(&self) -> MutexGuard<'_, SsrManager> {
        self.ssrs.lock()
    }

    /// The IPC port table.
    pub fn ipc(&self) -> MutexGuard<'_, IpcTable> {
        self.ipc.lock()
    }

    /// The interposition table (internally synchronized — no guard).
    pub fn redirector(&self) -> &Redirector {
        &self.redirector
    }

    /// The proportional-share scheduler (internally synchronized —
    /// no guard).
    pub fn sched(&self) -> &StrideScheduler {
        &self.sched
    }

    /// Tear down the kernel, returning the non-volatile hardware
    /// state (TPM and disk) — what survives to the next boot.
    pub fn shutdown(self) -> (Tpm, RamDisk) {
        self.stop_authz_pipeline();
        (self.tpm.into_inner(), self.disk.into_inner())
    }

    // ---- processes ----

    /// Spawn a top-level process. (Scheduler weights are assigned
    /// separately — tenants register via [`Nexus::sched`].)
    pub fn spawn(&self, name: &str, image: &[u8]) -> u64 {
        let mut ipds = self.ipds.write();
        let pid = ipds.spawn(name, 0, image);
        self.publish_ipd_hot(&ipds, pid);
        pid
    }

    /// Spawn a child process.
    pub fn spawn_child(&self, parent: u64, name: &str, image: &[u8]) -> Result<u64, KernelError> {
        let mut ipds = self.ipds.write();
        ipds.get(parent)?;
        let pid = ipds.spawn(name, parent, image);
        self.publish_ipd_hot(&ipds, pid);
        Ok(pid)
    }

    /// Publish (or refresh) a pid's entry in the lock-free hot index.
    /// Called with the `ipds` write lock held; the snapshot's writer
    /// mutex is leaf-scoped, so the nesting is one-way.
    fn publish_ipd_hot(&self, ipds: &IpdTable, pid: u64) {
        if let Ok(ipd) = ipds.get(pid) {
            let hot = IpdHot {
                principal: ipd.principal(),
                name: ipd.name.clone(),
                shape: ipd.labelstore.shape_handle(),
            };
            self.ipd_hot.update(|m| {
                m.insert(pid, hot.clone());
            });
        }
    }

    /// The principal a pid's statements are attributed to.
    pub fn principal(&self, pid: u64) -> Result<Principal, KernelError> {
        Ok(self.ipds.read().get(pid)?.principal())
    }

    /// Launch-time hash of a process image.
    pub fn launch_hash(&self, pid: u64) -> Result<nexus_tpm::Digest, KernelError> {
        Ok(self.ipds.read().get(pid)?.launch_hash)
    }

    /// Process table access (read-locked).
    pub fn ipds(&self) -> RwLockReadGuard<'_, IpdTable> {
        self.ipds.read()
    }

    /// Relinquish a system call permanently (§4.1: the web server
    /// drops everything but IPC after initialization).
    pub fn relinquish(&self, pid: u64, syscall: &'static str) -> Result<(), KernelError> {
        self.ipds.write().get_mut(pid)?.relinquished.insert(syscall);
        Ok(())
    }

    // ---- labels ----

    /// The `say` system call.
    pub fn sys_say(&self, pid: u64, statement: &str) -> Result<LabelHandle, KernelError> {
        let caller = self.principal(pid)?;
        Ok(self
            .ipds
            .write()
            .get_mut(pid)?
            .labelstore
            .say(&caller, statement)?)
    }

    /// Deposit a kernel-vouched label into a process's labelstore
    /// (e.g. port bindings, ownership transfers).
    pub fn kernel_label(
        &self,
        pid: u64,
        speaker: Principal,
        statement: Formula,
    ) -> Result<LabelHandle, KernelError> {
        Ok(self
            .ipds
            .write()
            .get_mut(pid)?
            .labelstore
            .insert(Label { speaker, statement }))
    }

    /// All label formulas a process holds.
    pub fn labels_of(&self, pid: u64) -> Result<Vec<Formula>, KernelError> {
        Ok(self.ipds.read().get(pid)?.labelstore.formulas())
    }

    /// Externalize a label into a TPM-rooted certificate (§2.4).
    pub fn externalize(&self, pid: u64, h: LabelHandle) -> Result<Certificate, KernelError> {
        Ok(self
            .ipds
            .read()
            .get(pid)?
            .labelstore
            .externalize(h, &self.signer)?)
    }

    /// Import a certificate into a process's labelstore, verifying the
    /// chain against a trusted endorsement key.
    pub fn import_cert(
        &self,
        pid: u64,
        cert: &Certificate,
        trusted_ek: &ed25519_dalek::VerifyingKey,
    ) -> Result<LabelHandle, KernelError> {
        Ok(self
            .ipds
            .write()
            .get_mut(pid)?
            .labelstore
            .import(cert, trusted_ek)?)
    }

    /// Transfer a label between processes' labelstores (atomic: both
    /// stores update under one table lock). Because `from` loses a
    /// credential, cached decisions that may have depended on it are
    /// dropped: the removal epoch is bumped (aborting racing cache
    /// fills) and the decision cache cleared.
    pub fn transfer_label(
        &self,
        from: u64,
        h: LabelHandle,
        to: u64,
    ) -> Result<LabelHandle, KernelError> {
        let handle = {
            let mut ipds = self.ipds.write();
            let label = ipds.get_mut(from)?.labelstore.delete(h)?;
            ipds.get_mut(to)?.labelstore.insert(label)
        };
        self.revocation_fence();
        Ok(handle)
    }

    /// The label-removal fence, as one named step: bump the removal
    /// epoch (aborting racing cache fills), clear the decision cache,
    /// and quiesce in-flight pipeline batches. Every path that takes a
    /// label *away* — transfer, credential revocation, and a remotely
    /// delivered revocation broadcast — runs exactly this; by the time
    /// it returns, no authorization backed by the departed label can
    /// complete (PR 5's no-stale-allow invariant, which the
    /// distributed layer extends across nodes).
    pub fn revocation_fence(&self) {
        self.label_removal_epoch.fetch_add(1, Ordering::Relaxed);
        self.dcache.clear();
        self.fence_in_flight_authz();
    }

    // ---- analyzer credentials (ISSUE 8) ----

    /// Record one analyzer run against the attestation counters:
    /// `cache_hit` when a prior result was reused instead of
    /// re-analyzing.
    pub fn note_analysis(&self, cache_hit: bool) {
        if cache_hit {
            self.attest.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.attest.analyses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Mint an analyzer credential: deposit `statement`, spoken by
    /// `analyzer_pid`'s principal, into `subject_pid`'s labelstore.
    /// The speaker is kernel-attributed (like `sys_say`), so an
    /// analyzer cannot mint in another principal's name. Counted and
    /// journaled as a `mint` event on the analyzer audit path.
    pub fn mint_credential(
        &self,
        analyzer_pid: u64,
        subject_pid: u64,
        statement: Formula,
    ) -> Result<LabelHandle, KernelError> {
        let speaker = self.principal(analyzer_pid)?;
        let claim = Self::claim_name(&statement);
        let handle = self
            .ipds
            .write()
            .get_mut(subject_pid)?
            .labelstore
            .insert(Label { speaker, statement });
        self.attest.minted.fetch_add(1, Ordering::Relaxed);
        self.journal_attest(subject_pid, &claim, AuditVerdict::Mint, None);
        Ok(handle)
    }

    /// Record an analyzer's refusal to mint `claim` for `subject_pid`
    /// (nothing enters the labelstore). The analysis witness lands in
    /// the journal event's `refuted` field, mirroring denial events.
    pub fn refuse_credential(
        &self,
        analyzer_pid: u64,
        subject_pid: u64,
        claim: &str,
        witness: &str,
    ) -> Result<(), KernelError> {
        self.principal(analyzer_pid)?;
        self.principal(subject_pid)?;
        self.attest.refused.fetch_add(1, Ordering::Relaxed);
        self.journal_attest(
            subject_pid,
            claim,
            AuditVerdict::Refuse,
            Some(witness.to_string()),
        );
        Ok(())
    }

    /// Revoke a previously minted credential: remove the label and
    /// flush everything that may have cached a decision it supported —
    /// exactly [`Nexus::transfer_label`]'s removal discipline (bump
    /// the label-removal epoch, clear the decision cache, fence
    /// in-flight pipeline batches). By the time this returns, no
    /// authorization backed by the revoked credential can complete.
    pub fn revoke_credential(&self, subject_pid: u64, h: LabelHandle) -> Result<(), KernelError> {
        let label = self
            .ipds
            .write()
            .get_mut(subject_pid)?
            .labelstore
            .delete(h)?;
        self.revocation_fence();
        self.attest.revoked.fetch_add(1, Ordering::Relaxed);
        self.journal_attest(
            subject_pid,
            &Self::claim_name(&label.statement),
            AuditVerdict::Revoke,
            None,
        );
        Ok(())
    }

    /// Cumulative attestation-path counters.
    pub fn attest_stats(&self) -> AttestStats {
        AttestStats {
            analyses_run: self.attest.analyses.load(Ordering::Relaxed),
            analysis_cache_hits: self.attest.cache_hits.load(Ordering::Relaxed),
            credentials_minted: self.attest.minted.load(Ordering::Relaxed),
            credentials_refused: self.attest.refused.load(Ordering::Relaxed),
            credentials_revoked: self.attest.revoked.load(Ordering::Relaxed),
        }
    }

    /// The claim (predicate) name a credential statement asserts.
    fn claim_name(statement: &Formula) -> String {
        match statement {
            Formula::Pred(name, _) => name.clone(),
            other => other.to_string(),
        }
    }

    /// Journal one analyzer credential event (while telemetry is on).
    fn journal_attest(
        &self,
        subject_pid: u64,
        claim: &str,
        verdict: AuditVerdict,
        witness: Option<String>,
    ) {
        if !self.telemetry.enabled() {
            return;
        }
        let mut ev = audit_event(
            subject_pid,
            claim,
            ResourceId::ipd(subject_pid).0,
            verdict,
            AuditPath::Analyzer,
        );
        let (g, p, l) = self.epoch_snapshot();
        ev.epochs = [g, p, l];
        ev.refuted = witness;
        self.telemetry.audit.push(ev);
    }

    // ---- replicated credentials (ISSUE 9) ----

    /// Apply a *remotely agreed* label mint: the distributed layer
    /// delivered a broadcast op whose quorum vouches for it, so the
    /// label enters `pid`'s store kernel-attributed (like
    /// [`Nexus::kernel_label`]) without a local `say`. Counted and
    /// journaled on the replication audit path.
    pub fn apply_remote_mint(
        &self,
        pid: u64,
        speaker: Principal,
        statement: Formula,
    ) -> Result<LabelHandle, KernelError> {
        let claim = Self::claim_name(&statement);
        let handle = self
            .ipds
            .write()
            .get_mut(pid)?
            .labelstore
            .insert(Label { speaker, statement });
        self.dist.remote_mints.fetch_add(1, Ordering::Relaxed);
        self.journal_dist(pid, &claim, AuditVerdict::Mint);
        Ok(handle)
    }

    /// Apply a *remotely agreed* revocation: remove the label and run
    /// the full [`Nexus::revocation_fence`]. By the time this returns,
    /// no authorization on this node backed by the revoked label can
    /// complete — the cross-node extension of the no-stale-allow
    /// invariant (a revocation delivered anywhere fences every
    /// replica as its delivery is applied).
    pub fn apply_remote_revoke(&self, pid: u64, h: LabelHandle) -> Result<Label, KernelError> {
        let label = self.ipds.write().get_mut(pid)?.labelstore.delete(h)?;
        self.revocation_fence();
        self.dist.remote_revocations.fetch_add(1, Ordering::Relaxed);
        self.journal_dist(
            pid,
            &Self::claim_name(&label.statement),
            AuditVerdict::Revoke,
        );
        Ok(label)
    }

    /// Find a label in `pid`'s store by content. The replication layer
    /// names labels by (speaker, statement) — handles are node-local —
    /// so applying a remote revocation starts here.
    pub fn find_label(
        &self,
        pid: u64,
        speaker: &Principal,
        statement: &Formula,
    ) -> Result<Option<LabelHandle>, KernelError> {
        Ok(self
            .ipds
            .read()
            .get(pid)?
            .labelstore
            .find_handle(speaker, statement))
    }

    /// Cumulative replication-path counters.
    pub fn dist_stats(&self) -> DistStats {
        DistStats {
            remote_mints: self.dist.remote_mints.load(Ordering::Relaxed),
            remote_revocations: self.dist.remote_revocations.load(Ordering::Relaxed),
        }
    }

    /// Journal one replication event (while telemetry is on).
    fn journal_dist(&self, subject_pid: u64, claim: &str, verdict: AuditVerdict) {
        if !self.telemetry.enabled() {
            return;
        }
        let mut ev = audit_event(
            subject_pid,
            claim,
            ResourceId::ipd(subject_pid).0,
            verdict,
            AuditPath::Replication,
        );
        let (g, p, l) = self.epoch_snapshot();
        ev.epochs = [g, p, l];
        self.telemetry.audit.push(ev);
    }

    // ---- goals, proofs, authorities ----

    fn manager_of(object: &ResourceId) -> Principal {
        if object.0.starts_with("file:") {
            Principal::name(FS_PRINCIPAL)
        } else {
            Principal::name("Nexus")
        }
    }

    /// Grant `pid` ownership of `object`: the resource manager says
    /// the process speaks for the object (§2.6).
    pub fn grant_ownership(
        &self,
        pid: u64,
        object: &ResourceId,
    ) -> Result<LabelHandle, KernelError> {
        let manager = Self::manager_of(object);
        let subject = self.principal(pid)?;
        let stmt = Formula::speaksfor(subject, manager.sub(object.0.clone()));
        self.kernel_label(pid, manager, stmt)
    }

    /// The `setgoal` system call: authorized against the resource's
    /// `setgoal` goal (default: owner only), then installed; the
    /// decision-cache subregion for (op, object) is invalidated.
    pub fn sys_setgoal(
        &self,
        pid: u64,
        object: ResourceId,
        op: &str,
        formula: Formula,
    ) -> Result<u64, KernelError> {
        if !self.authorize(pid, "setgoal", &object)? {
            return Err(KernelError::AccessDenied {
                reason: format!("setgoal on {object} denied"),
            });
        }
        let opn = OpName::from(op);
        let epoch = self
            .goals
            .set_goal(object.clone(), opn.clone(), formula, None);
        self.dcache.invalidate_subregion(&opn, &object);
        self.fence_in_flight_authz();
        Ok(epoch)
    }

    /// Clear a goal (authorized like `setgoal`).
    pub fn sys_clear_goal(
        &self,
        pid: u64,
        object: &ResourceId,
        op: &str,
    ) -> Result<(), KernelError> {
        if !self.authorize(pid, "setgoal", object)? {
            return Err(KernelError::AccessDenied {
                reason: format!("setgoal on {object} denied"),
            });
        }
        let opn = OpName::from(op);
        self.goals.clear_goal(object, &opn);
        self.dcache.invalidate_subregion(&opn, object);
        self.fence_in_flight_authz();
        Ok(())
    }

    /// Install a proof for (subject, op, object); invalidates exactly
    /// that decision-cache entry (§2.8).
    pub fn sys_set_proof(
        &self,
        pid: u64,
        op: &str,
        object: &ResourceId,
        proof: Proof,
    ) -> Result<(), KernelError> {
        let subject = self.principal(pid)?;
        let key = self
            .proofs
            .set_proof(subject, OpName::from(op), object.clone(), proof);
        self.dcache.invalidate_entry(&key);
        Ok(())
    }

    /// Remove a stored proof; invalidates its decision-cache entry.
    pub fn sys_clear_proof(
        &self,
        pid: u64,
        op: &str,
        object: &ResourceId,
    ) -> Result<(), KernelError> {
        let subject = self.principal(pid)?;
        if let Some(key) = self.proofs.clear_proof(&subject, &OpName::from(op), object) {
            self.dcache.invalidate_entry(&key);
        }
        Ok(())
    }

    /// Register an authority for a principal's statements.
    pub fn register_authority(
        &self,
        principal: Principal,
        authority: Arc<dyn Authority>,
        kind: AuthorityKind,
    ) {
        self.authorities.register(principal, authority, kind);
    }

    // ---- the authorization path (Figure 1) ----

    /// Authorize `pid` performing `op` on `object` using the stored
    /// proof (or auto-proving from held labels when configured).
    ///
    /// When the asynchronous pipeline is running, a decision-cache
    /// miss is submitted to the [`GuardPool`] and this call blocks on
    /// the ticket — same verdict, but the guard runs off-thread and
    /// coalesces with concurrent requests for the same goal.
    pub fn authorize(&self, pid: u64, op: &str, object: &ResourceId) -> Result<bool, KernelError> {
        self.authorize_with(pid, op, object, None)
    }

    /// Authorize with an explicitly supplied proof.
    pub fn authorize_with(
        &self,
        pid: u64,
        op: &str,
        object: &ResourceId,
        inline_proof: Option<&Proof>,
    ) -> Result<bool, KernelError> {
        let cfg = self.config();
        let opn = OpName::from(op);
        match self.route_authz(pid, &opn, object, inline_proof, &cfg)? {
            AuthzRoute::Cached(allow) => Ok(allow),
            AuthzRoute::Submitted(ticket) => match ticket.wait() {
                AuthzOutcome::Allow => Ok(true),
                AuthzOutcome::Deny => Ok(false),
                // A fault (pool raced a shutdown mid-flight, or
                // pathological epoch churn starved the batch) degrades
                // to the inline path rather than surfacing an error
                // for an evaluable request.
                AuthzOutcome::Fault(_) => {
                    let subject = self.principal(pid)?;
                    self.authorize_inline(pid, subject, &opn, object, inline_proof, &cfg)
                }
            },
            AuthzRoute::Evaluate(subject) => {
                self.authorize_inline(pid, subject, &opn, object, inline_proof, &cfg)
            }
        }
    }

    /// Begin an asynchronous authorization: returns a ticket to poll,
    /// block on, or attach a callback to. Decision-cache hits resolve
    /// the ticket immediately; without a running pipeline the guard
    /// runs inline and the ticket comes back already resolved. A
    /// submission refused at the pipeline's high-water mark (under
    /// `OverflowPolicy::Reject`) surfaces as a ticket already
    /// resolved to [`AuthzOutcome::Fault`] — the caller decides
    /// whether to retry, degrade, or evaluate by other means; it is
    /// never parked behind an unbounded queue.
    pub fn authorize_async(
        &self,
        pid: u64,
        op: &str,
        object: &ResourceId,
    ) -> Result<AuthzTicket, KernelError> {
        self.authorize_async_with(pid, op, object, None)
    }

    /// Asynchronous authorization with an explicitly supplied proof.
    pub fn authorize_async_with(
        &self,
        pid: u64,
        op: &str,
        object: &ResourceId,
        inline_proof: Option<&Proof>,
    ) -> Result<AuthzTicket, KernelError> {
        let cfg = self.config();
        let opn = OpName::from(op);
        match self.route_authz(pid, &opn, object, inline_proof, &cfg)? {
            AuthzRoute::Cached(allow) => Ok(AuthzTicket::ready(outcome_of(allow))),
            AuthzRoute::Submitted(ticket) => Ok(ticket),
            AuthzRoute::Evaluate(subject) => {
                let allow =
                    self.authorize_inline(pid, subject, &opn, object, inline_proof, &cfg)?;
                Ok(AuthzTicket::ready(outcome_of(allow)))
            }
        }
    }

    /// The shared front half of both authorization entry points:
    /// resolve the subject, probe the decision cache, and submit to
    /// the pipeline when it is running. `Evaluate` means the caller
    /// must run the guard inline (no pipeline, or it raced a
    /// shutdown).
    fn route_authz(
        &self,
        pid: u64,
        opn: &OpName,
        object: &ResourceId,
        inline_proof: Option<&Proof>,
        cfg: &NexusConfig,
    ) -> Result<AuthzRoute, KernelError> {
        // The hot-index read resolves the subject principal and the
        // live label shape with zero locks — the submission path never
        // waits behind a spawn or a `say`. A pid missing from the
        // index (spawned through some path that bypassed `spawn`)
        // falls back to the locked table.
        let hot = self.ipd_hot.read(|m, _| {
            m.get(&pid)
                .map(|h| (h.principal.clone(), h.shape.load(Ordering::Relaxed)))
        });
        let (subject, label_shape) = match hot {
            Some(pair) => pair,
            None => (
                self.principal(pid)?,
                self.ipds
                    .read()
                    .get(pid)
                    .map(|ipd| ipd.labelstore.shape())
                    .unwrap_or(0),
            ),
        };
        let telemetry_on = self.telemetry.enabled();
        if cfg.decision_cache {
            let key = CacheKey {
                subject: subject.clone(),
                operation: opn.clone(),
                object: object.clone(),
            };
            // Hit-path auditing is *sampled*: the ticked decision —
            // one striped relaxed fetch_add — happens before the
            // lookup so only 1-in-2^shift entries ever pay for a
            // clock read or (on a hit) an event allocation. Disabled
            // telemetry costs exactly one relaxed load here.
            let hit_start = if telemetry_on && self.telemetry.sampler.tick() {
                Some(Instant::now())
            } else {
                None
            };
            if let Some(allow) = self.dcache.lookup(&key) {
                if let Some(start) = hit_start {
                    self.audit_cache_hit(pid, opn, object, allow, start);
                }
                return Ok(AuthzRoute::Cached(allow));
            }
        }
        if let Some(pool) = self.authz_pool() {
            // The label shape is a coalescing hint: requests batch
            // only with same-shaped credential sets, so the batch
            // prover's frontier sharing is maximal. One atomic load
            // off the hot index above.
            if let Some(ticket) = pool.try_submit(AuthzRequest {
                pid,
                op: opn.clone(),
                object: object.clone(),
                proof: inline_proof.cloned(),
                external: self.classify_external(&subject, opn, object, inline_proof),
                label_shape,
                submitted_at: telemetry_on.then(Instant::now),
            }) {
                return Ok(AuthzRoute::Submitted(ticket));
            }
        }
        Ok(AuthzRoute::Evaluate(subject))
    }

    /// Classify a request *before* evaluation: could checking it
    /// consult an external (IPC-backed) authority? The pipeline
    /// routes external-touching requests to its dedicated (smaller)
    /// worker lane so one stuck authority — an NTP-style freshness
    /// service that stops answering — can occupy at most that lane
    /// while embedded-authority traffic keeps flowing.
    ///
    /// The classification is a conservative approximation over the
    /// effective goal formula plus the leaves of the proof that will
    /// be checked — supplied or stored (an auto-proved proof is not
    /// anticipated here; auto-proving only assembles held labels, and
    /// a label-backed leaf is satisfied before the guard ever falls
    /// back to an authority query). Goal and stored proof are
    /// *inspected in place* against the stores' published snapshots —
    /// no lock, no clone; this runs once per submission. Misclassification
    /// affects only which lane runs the batch, never the verdict.
    /// With no external authorities registered the whole check is one
    /// atomic load.
    fn classify_external(
        &self,
        subject: &Principal,
        opn: &OpName,
        object: &ResourceId,
        inline_proof: Option<&Proof>,
    ) -> bool {
        if !self.authorities.has_external() {
            return false;
        }
        let leaves_external = |p: &Proof| {
            p.leaves()
                .iter()
                .any(|leaf| self.authorities.mentions_external(leaf))
        };
        self.goals
            .inspect_effective(&Self::manager_of(object), object, opn, |goal| {
                self.authorities.mentions_external(goal)
            })
            || match inline_proof {
                Some(p) => leaves_external(p),
                None => self
                    .proofs
                    .inspect(subject, opn, object, leaves_external)
                    .unwrap_or(false),
            }
    }

    /// The inline (caller-thread) authorization path: a single
    /// request evaluated under a fresh epoch snapshot. `subject` is
    /// the already-resolved principal of `pid`.
    fn authorize_inline(
        &self,
        pid: u64,
        subject: Principal,
        opn: &OpName,
        object: &ResourceId,
        inline_proof: Option<&Proof>,
        cfg: &NexusConfig,
    ) -> Result<bool, KernelError> {
        let t0 = self.telemetry.enabled().then(Instant::now);
        // The read stamp is captured *before* any store read: if any
        // epoch or publication version moves while the guard runs, the
        // decision may be stale and must not be cached (insert_if
        // re-validates under the subregion writer lock).
        let stamp = self.read_stamp();
        self.guard_upcalls.fetch_add(1, Ordering::Relaxed);
        let goal = self
            .goals
            .effective_goal(&Self::manager_of(object), object, opn);
        let mut prepared = vec![self.prepare_request(pid, subject, opn, object, inline_proof, cfg)];
        let prove_start = t0.map(|_| Instant::now());
        self.auto_prove_prepared(opn, object, &goal, &mut prepared, cfg);
        let prove_end = t0.map(|_| Instant::now());
        let prep = prepared.pop().expect("one prepared request")?;
        let req = AccessRequest {
            subject: &prep.subject,
            operation: opn,
            object,
            proof: prep.proof.as_ref(),
            labels: &prep.labels,
        };
        let decision = self.guard.check(&req, &goal, &self.authorities);
        let verify_end = t0.map(|_| Instant::now());
        let cacheable = decision.cacheable && (!prep.auto_attempted || decision.allow);
        if cfg.decision_cache && cacheable {
            let key = CacheKey {
                subject: prep.subject.clone(),
                operation: opn.clone(),
                object: object.clone(),
            };
            self.dcache
                .insert_if(key, decision.allow, || self.stamp_still_valid(&stamp));
        }
        // Inline evaluations are µs-scale and always journaled; the
        // spans double into the stage histograms so inline and
        // pipeline traffic share one set of distributions.
        if let (Some(t0), Some(ps), Some(pe), Some(ve)) = (t0, prove_start, prove_end, verify_end) {
            let prove_ns = span_ns(ps, pe);
            let verify_ns = span_ns(pe, ve);
            let complete_ns = span_ns(t0, Instant::now());
            let stages = &self.telemetry.stages;
            stages.record(Stage::Prove, prove_ns);
            stages.record(Stage::Verify, verify_ns);
            stages.record(Stage::Complete, complete_ns);
            let mut ev = audit_event(
                pid,
                opn.0.clone(),
                object.0.clone(),
                verdict_of(decision.allow),
                AuditPath::Inline,
            );
            ev.epochs = [stamp.epochs.0, stamp.epochs.1, stamp.epochs.2];
            ev.memo_hits = self.guard.prover_stats().memo_hits;
            ev.stages.prove_ns = Some(prove_ns);
            ev.stages.verify_ns = Some(verify_ns);
            ev.stages.complete_ns = Some(complete_ns);
            if !decision.allow {
                ev.refuted = prep.refuted.as_ref().map(|f| f.to_string());
            }
            self.telemetry.audit.push(ev);
        }
        Ok(decision.allow)
    }

    /// Journal a sampled decision-cache hit. Only 1-in-2^shift
    /// authorizations reach here (see `ObsConfig::hit_sample_shift`),
    /// so the event allocation and epoch reads are off the common ns-
    /// scale path.
    fn audit_cache_hit(
        &self,
        pid: u64,
        opn: &OpName,
        object: &ResourceId,
        allow: bool,
        start: Instant,
    ) {
        let mut ev = audit_event(
            pid,
            opn.0.clone(),
            object.0.clone(),
            verdict_of(allow),
            AuditPath::CacheHit,
        );
        let (g, p, l) = self.epoch_snapshot();
        ev.epochs = [g, p, l];
        ev.memo_hits = self.guard.prover_stats().memo_hits;
        ev.stages.complete_ns = Some(span_ns(start, Instant::now()));
        self.telemetry.audit.push(ev);
    }

    /// Assemble everything request-specific the guard needs: the
    /// subject's credentials and the proof to check (inline or
    /// stored; auto-proving is deferred to
    /// [`Nexus::auto_prove_prepared`] so batches share one prover
    /// session). `subject` must be `pid`'s principal, resolved by the
    /// caller.
    fn prepare_request(
        &self,
        pid: u64,
        subject: Principal,
        opn: &OpName,
        object: &ResourceId,
        inline_proof: Option<&Proof>,
        cfg: &NexusConfig,
    ) -> Result<PreparedRequest, KernelError> {
        // The subject's credentials: its labelstore plus the request
        // itself, which arrived over the attested syscall channel and
        // is therefore an utterance the kernel can vouch for. The
        // credential set comes from the store's memoized snapshot, so
        // a wide set is assembled once per label mutation, not once
        // per request.
        let creds = self.ipds.read().get(pid)?.labelstore.formulas_snapshot().0;
        let mut labels = Vec::with_capacity(creds.len() + 2);
        labels.extend(creds.iter().cloned());
        labels.push(Formula::pred(&opn.0, vec![]).says(subject.clone()));
        labels.push(Formula::pred(&opn.0, vec![Term::sym(object.0.clone())]).says(subject.clone()));
        let stored = self.proofs.get(&subject, opn, object);
        // Auto-proving makes the outcome depend on the subject's label
        // set. Cached allows on that path stay valid because labels
        // only ever *leave* a store via `transfer_label`, which bumps
        // the removal epoch and clears the cache; auto-proved denies
        // are never cached (a later `say` could make them allowed,
        // with no invalidation hook for additions). The proof itself
        // is constructed later by [`Nexus::auto_prove_prepared`], so a
        // batch's searches share one prover session.
        let auto_attempted = inline_proof.is_none() && stored.is_none() && cfg.auto_prove;
        let proof = match inline_proof {
            Some(p) => Some(p.clone()),
            None => stored,
        };
        Ok(PreparedRequest {
            subject,
            labels,
            proof,
            auto_attempted,
            refuted: None,
        })
    }

    /// Construct proofs for every prepared request that arrived
    /// without one (the auto-prove path), routing the whole set
    /// through the guard's batch prover: one persistent `ProofSearch`
    /// session whose memo is shared by the batch (and by subsequent
    /// batches) and flushed whenever the label-removal epoch moves —
    /// a memoized subgoal can never outlive the credential movement
    /// that falsified it. `goal` is instantiated per request, since
    /// `$subject` differs; ground goals instantiate to themselves and
    /// share one frontier group.
    ///
    /// With `cfg.batch_prover` off, falls back to the legacy one-shot
    /// search per request (the `fig9-prover` baseline).
    fn auto_prove_prepared(
        &self,
        opn: &OpName,
        object: &ResourceId,
        goal: &Formula,
        prepared: &mut [Result<PreparedRequest, KernelError>],
        cfg: &NexusConfig,
    ) {
        let needy: Vec<usize> = prepared
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                Ok(p) if p.auto_attempted && p.proof.is_none() => Some(i),
                _ => None,
            })
            .collect();
        if needy.is_empty() {
            return;
        }
        let insts: Vec<Formula> = needy
            .iter()
            .map(|&i| {
                let p = prepared[i].as_ref().expect("filtered to Ok");
                let probe = AccessRequest {
                    subject: &p.subject,
                    operation: opn,
                    object,
                    proof: None,
                    labels: &p.labels,
                };
                Guard::instantiate_goal(goal, &probe)
            })
            .collect();
        if cfg.batch_prover {
            let goals: Vec<BatchGoal<'_>> = needy
                .iter()
                .zip(&insts)
                .map(|(&i, inst)| BatchGoal {
                    goal: inst,
                    credentials: &prepared[i].as_ref().expect("filtered to Ok").labels,
                })
                .collect();
            let outcomes = self.guard.prove_batch_explained(
                self.prover_epoch(),
                &goals,
                ProverConfig::default(),
            );
            for (&i, out) in needy.iter().zip(outcomes) {
                let p = prepared[i].as_mut().expect("filtered to Ok");
                p.proof = out.proof;
                p.refuted = out.refuted;
            }
        } else {
            for (&i, inst) in needy.iter().zip(&insts) {
                let p = prepared[i].as_mut().expect("filtered to Ok");
                p.proof = prove(inst, &p.labels, ProverConfig::default());
            }
        }
    }

    /// The epoch the prover memo lives under: label *removals* are the
    /// only events that can falsify a memoized derivation (additions
    /// change the credential fingerprints the memo is keyed by), so
    /// this is exactly the decision cache's label-removal epoch.
    fn prover_epoch(&self) -> u64 {
        self.label_removal_epoch.load(Ordering::Relaxed)
    }

    /// The (goal, proof, label-removal) epoch triple the staleness
    /// fences compare.
    fn epoch_snapshot(&self) -> (u64, u64, u64) {
        (
            self.goals.epoch(),
            self.proofs.epoch(),
            self.label_removal_epoch.load(Ordering::Relaxed),
        )
    }

    /// Everything a lock-free evaluation must capture *before* its
    /// first store read in order to prove, afterwards, that nothing
    /// moved underneath it.
    fn read_stamp(&self) -> ReadStamp {
        ReadStamp {
            epochs: self.epoch_snapshot(),
            goal_v: self.goals.version(),
            proof_v: self.proofs.version(),
        }
    }

    /// The validate-after-read check. The epoch triple catches writers
    /// that completed since the stamp; the publication versions catch
    /// the in-flight case — a writer that bumped its epoch *before*
    /// the stamp was taken but had not yet published, so the stamped
    /// epochs look current while the data read afterwards was old.
    /// Versions are monotone and bumped strictly after their epoch, so
    /// that writer's publication always moves a version past the
    /// stamped value.
    fn stamp_still_valid(&self, stamp: &ReadStamp) -> bool {
        self.epoch_snapshot() == stamp.epochs
            && self.goals.version() == stamp.goal_v
            && self.proofs.version() == stamp.proof_v
    }

    // ---- the asynchronous pipeline (ISSUE 2) ----

    /// Start the asynchronous authorization pipeline: a [`GuardPool`]
    /// whose workers evaluate coalesced batches against this kernel.
    /// Idempotent — returns the running pool if already started. When
    /// `cfg` carries no prioritizer, batches are ordered by the
    /// requesting IPD's proportional-share weight (heavier tenants
    /// drain first once the queue backs up).
    ///
    /// Admission is bounded by `cfg.max_queued` + `cfg.overflow`: a
    /// submission past the high-water mark faults (the sync
    /// [`Nexus::authorize`] then evaluates inline — overload sheds to
    /// the caller's thread; [`Nexus::authorize_async`] surfaces the
    /// fault on the ticket) or blocks, per policy. Requests whose
    /// goal mentions an externally-backed authority run on the
    /// dedicated `cfg.external_workers` lane so a stuck authority
    /// cannot wedge the whole pool.
    pub fn start_authz_pipeline(self: &Arc<Self>, cfg: GuardPoolConfig) -> Arc<GuardPool> {
        let mut slot = self.authzd.write();
        if let Some(pool) = &*slot {
            return Arc::clone(pool);
        }
        let kernel = Arc::downgrade(self);
        let prioritizer = cfg.prioritizer.clone().or_else(|| {
            let weak: Weak<Nexus> = Arc::downgrade(self);
            Some(Arc::new(move |req: &AuthzRequest| {
                let Some(kernel) = weak.upgrade() else {
                    return 0;
                };
                // Cheap early-out for the common no-tenant case; the
                // IPD name is borrowed out of the lock-free hot index
                // (sched locks are leaf-scoped, so the weight lookup
                // inside the snapshot read is safe) — the submission
                // path takes no per-request lock here either.
                if kernel.sched.is_idle() {
                    return 0;
                }
                kernel.ipd_hot.read(|m, _| {
                    m.get(&req.pid)
                        .and_then(|h| kernel.sched.weight(&h.name))
                        .unwrap_or(0)
                })
            }) as nexus_authzd::pool::Prioritizer)
        });
        // Unless the caller supplied its own timers, the pool records
        // submit/queue-wait/assembly spans into the kernel's stage
        // histograms (the Arc is shared, not copied, so one snapshot
        // covers both sides; the enabled flag stays the single switch).
        let stage_timers = cfg
            .stage_timers
            .clone()
            .or_else(|| Some(Arc::clone(&self.telemetry.stages)));
        let pool = Arc::new(GuardPool::new(
            GuardPoolConfig {
                prioritizer,
                stage_timers,
                ..cfg
            },
            Arc::new(NexusExecutor { kernel }),
        ));
        *slot = Some(Arc::clone(&pool));
        pool
    }

    /// Stop the pipeline (if running), faulting queued requests and
    /// joining the workers. Subsequent authorizations run inline.
    pub fn stop_authz_pipeline(&self) {
        let pool = self.authzd.write().take();
        if let Some(pool) = pool {
            pool.shutdown();
        }
    }

    /// The running pipeline, if any.
    fn authz_pool(&self) -> Option<Arc<GuardPool>> {
        self.authzd.read().clone()
    }

    /// Pipeline statistics, if the pipeline is running.
    pub fn authz_stats(&self) -> Option<PoolStats> {
        self.authz_pool().map(|p| p.stats())
    }

    /// The invalidation fence: wait until every authorization
    /// submitted to the pipeline before this point has completed —
    /// the pool's quiesce counters span both the embedded and the
    /// external worker lanes, so the fence covers in-flight external
    /// batches too. Called after `setgoal`/`transfer_label` bump
    /// their epochs, so that by the time the invalidating syscall
    /// returns, any batch evaluated under the old goal has
    /// re-validated its epochs (and re-evaluated if stale) — no stale
    /// allow can complete later.
    fn fence_in_flight_authz(&self) {
        if let Some(pool) = self.authz_pool() {
            pool.quiesce();
        }
    }

    /// Evaluate one coalesced batch (all requests share `key`'s
    /// (operation, object, label shape) triple and therefore its
    /// goal). The goal is fetched once; requests without a proof are
    /// auto-proved through one shared prover session
    /// (`Guard::prove_batch`); `Guard::check_batch` amortizes the
    /// goal's normalization across the batch; the epoch fence
    /// re-evaluates the whole batch if goals/proofs/labels moved while
    /// the guard ran.
    fn evaluate_authz_batch(&self, key: &BatchKey, reqs: &[AuthzRequest]) -> Vec<AuthzOutcome> {
        let (opn, object) = (&key.op, &key.object);
        let cfg = self.config();
        let eval_start = self.telemetry.enabled().then(Instant::now);
        // Bounded only to rule out livelock under pathological epoch
        // churn; in that case the batch *faults* rather than letting a
        // possibly-stale allow escape.
        const MAX_FENCE_RETRIES: usize = 32;
        for _ in 0..=MAX_FENCE_RETRIES {
            let stamp = self.read_stamp();
            let goal = self
                .goals
                .effective_goal(&Self::manager_of(object), object, opn);
            let mut prepared: Vec<Result<PreparedRequest, KernelError>> = reqs
                .iter()
                .map(|r| {
                    let subject = self.principal(r.pid)?;
                    self.prepare_request(r.pid, subject, opn, object, r.proof.as_ref(), &cfg)
                })
                .collect();
            let prove_start = eval_start.map(|_| Instant::now());
            self.auto_prove_prepared(opn, object, &goal, &mut prepared, &cfg);
            let prove_end = eval_start.map(|_| Instant::now());
            let ok_indices: Vec<usize> = prepared
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.is_ok().then_some(i))
                .collect();
            let access: Vec<AccessRequest<'_>> = ok_indices
                .iter()
                .map(|&i| {
                    let p = prepared[i].as_ref().expect("filtered to Ok");
                    AccessRequest {
                        subject: &p.subject,
                        operation: opn,
                        object,
                        proof: p.proof.as_ref(),
                        labels: &p.labels,
                    }
                })
                .collect();
            self.guard_upcalls
                .fetch_add(access.len() as u64, Ordering::Relaxed);
            let decisions = self.guard.check_batch(&access, &goal, &self.authorities);
            if !self.stamp_still_valid(&stamp) {
                // A setgoal/set_proof/transfer_label raced the batch
                // (completed, or bumped-but-unpublished when we
                // stamped): the decisions may rest on dead state.
                // Re-evaluate.
                continue;
            }
            let verify_end = eval_start.map(|_| Instant::now());
            let mut outcomes: Vec<Option<AuthzOutcome>> = vec![None; reqs.len()];
            for (&i, decision) in ok_indices.iter().zip(&decisions) {
                let p = prepared[i].as_ref().expect("filtered to Ok");
                let cacheable = decision.cacheable && (!p.auto_attempted || decision.allow);
                if cfg.decision_cache && cacheable {
                    let ck = CacheKey {
                        subject: p.subject.clone(),
                        operation: opn.clone(),
                        object: object.clone(),
                    };
                    self.dcache
                        .insert_if(ck, decision.allow, || self.stamp_still_valid(&stamp));
                }
                outcomes[i] = Some(outcome_of(decision.allow));
            }
            for (i, p) in prepared.iter().enumerate() {
                if let Err(e) = p {
                    outcomes[i] = Some(AuthzOutcome::Fault(e.to_string()));
                }
            }
            // Spans are recorded only for the *final* (stamp-valid)
            // attempt: a retried attempt's decisions never escape, so
            // its timings would skew the distributions with work the
            // caller never observed.
            if let (Some(t0), Some(ps), Some(pe), Some(ve)) =
                (eval_start, prove_start, prove_end, verify_end)
            {
                let prove_ns = span_ns(ps, pe);
                let verify_ns = span_ns(pe, ve);
                self.telemetry.stages.record(Stage::Prove, prove_ns);
                self.telemetry.stages.record(Stage::Verify, verify_ns);
                let epochs = [stamp.epochs.0, stamp.epochs.1, stamp.epochs.2];
                let memo_hits = self.guard.prover_stats().memo_hits;
                for (i, (r, outcome)) in reqs.iter().zip(&outcomes).enumerate() {
                    let verdict = match outcome.as_ref().expect("every request resolved") {
                        AuthzOutcome::Allow => AuditVerdict::Allow,
                        AuthzOutcome::Deny => AuditVerdict::Deny,
                        AuthzOutcome::Fault(_) => AuditVerdict::Fault,
                    };
                    let mut ev = audit_event(
                        r.pid,
                        opn.0.clone(),
                        object.0.clone(),
                        verdict,
                        AuditPath::Pipeline,
                    );
                    ev.epochs = epochs;
                    ev.memo_hits = memo_hits;
                    ev.stages.queue_wait_ns = r.submitted_at.map(|at| span_ns(at, t0));
                    ev.stages.prove_ns = Some(prove_ns);
                    ev.stages.verify_ns = Some(verify_ns);
                    if verdict == AuditVerdict::Deny {
                        ev.refuted = prepared[i]
                            .as_ref()
                            .ok()
                            .and_then(|p| p.refuted.as_ref())
                            .map(|f| f.to_string());
                    }
                    self.telemetry.audit.push(ev);
                }
            }
            return outcomes
                .into_iter()
                .map(|o| o.expect("every request resolved"))
                .collect();
        }
        if self.telemetry.enabled() {
            for r in reqs {
                self.telemetry.audit.push(audit_event(
                    r.pid,
                    opn.0.clone(),
                    object.0.clone(),
                    AuditVerdict::Fault,
                    AuditPath::Pipeline,
                ));
            }
        }
        vec![
            AuthzOutcome::Fault("authorization batch could not reach a stable epoch".into());
            reqs.len()
        ]
    }

    /// Decision-cache statistics.
    pub fn decision_cache_stats(&self) -> nexus_core::decision_cache::DecisionCacheStats {
        self.dcache.stats()
    }

    /// Guard statistics.
    pub fn guard_stats(&self) -> nexus_core::GuardStats {
        self.guard.stats()
    }

    /// Batch-prover session statistics (the auto-prove path's memo).
    pub fn guard_prover_stats(&self) -> nexus_core::ProverStats {
        self.guard.prover_stats()
    }

    /// Number of subgoal entries currently held by the batch-prover
    /// memo (diagnostics; 0 after an epoch flush).
    pub fn guard_prover_memo_len(&self) -> usize {
        self.guard.prover_memo_len()
    }

    /// Number of guard upcalls (decision-cache misses that reached the
    /// guard).
    pub fn guard_upcalls(&self) -> u64 {
        self.guard_upcalls.load(Ordering::Relaxed)
    }

    // ---- telemetry (ISSUE 7) ----

    /// One unified snapshot of every stats surface in the stack —
    /// decision cache, guard, batch prover, interposition, pipeline
    /// (when running), audit journal, and the per-stage latency
    /// histograms — frozen into a [`TelemetrySnapshot`] renderable as
    /// Prometheus text or JSON. Collection polls the live atomics
    /// once; it never locks a hot path.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut r = MetricsRegistry::new();
        r.gauge(
            "nexus_telemetry_enabled",
            "1 when stage timers and the audit journal are recording",
            i64::from(self.telemetry.enabled()),
        );
        let d = self.dcache.stats();
        r.counter("nexus_dcache_hits_total", "decision-cache hits", d.hits)
            .counter(
                "nexus_dcache_misses_total",
                "decision-cache misses",
                d.misses,
            )
            .counter(
                "nexus_dcache_invalidations_total",
                "decision-cache epoch invalidations",
                d.invalidations,
            )
            .counter(
                "nexus_dcache_collisions_total",
                "decision-cache set-conflict evictions",
                d.collisions,
            )
            .counter(
                "nexus_dcache_read_retries_total",
                "seqlock read retries (torn reads)",
                d.read_retries,
            )
            .counter(
                "nexus_dcache_read_fallbacks_total",
                "seqlock reads that fell back to the table lock",
                d.read_fallbacks,
            );
        let g = self.guard.stats();
        r.counter("nexus_guard_checks_total", "guard proof checks", g.checks)
            .counter(
                "nexus_guard_cache_hits_total",
                "guard proof-cache hits",
                g.cache_hits,
            )
            .counter(
                "nexus_guard_cache_misses_total",
                "guard proof-cache misses",
                g.cache_misses,
            )
            .counter(
                "nexus_guard_authority_queries_total",
                "authority predicate queries",
                g.authority_queries,
            )
            .counter(
                "nexus_guard_evictions_total",
                "guard proof-cache evictions",
                g.evictions,
            )
            .counter(
                "nexus_guard_batched_total",
                "requests checked through check_batch",
                g.batched,
            )
            .counter(
                "nexus_guard_upcalls_total",
                "decision-cache misses that reached the guard",
                self.guard_upcalls(),
            );
        let p = self.guard.prover_stats();
        r.counter(
            "nexus_prover_memo_hits_total",
            "prover memo hits",
            p.memo_hits,
        )
        .counter(
            "nexus_prover_memo_misses_total",
            "prover memo misses",
            p.memo_misses,
        )
        .counter(
            "nexus_prover_batch_groups_total",
            "distinct frontier groups across batches",
            p.batch_groups,
        )
        .counter(
            "nexus_prover_batch_shared_total",
            "goals that shared an earlier goal's frontier",
            p.batch_shared,
        )
        .counter(
            "nexus_prover_flushes_total",
            "memo flushes (label-removal epoch moved)",
            p.flushes,
        )
        .counter(
            "nexus_prover_proved_total",
            "auto-prove successes",
            p.proved,
        )
        .counter("nexus_prover_failed_total", "auto-prove failures", p.failed);
        let i = self.redirector.stats();
        r.counter(
            "nexus_interpose_invocations_total",
            "redirector monitor invocations",
            i.invocations,
        )
        .counter(
            "nexus_interpose_hits_total",
            "redirector verdict-cache hits",
            i.hits,
        );
        if let Some(s) = self.authz_stats() {
            r.counter(
                "nexus_authz_submitted_total",
                "pipeline submissions",
                s.submitted,
            )
            .counter(
                "nexus_authz_completed_total",
                "pipeline completions",
                s.completed,
            )
            .counter("nexus_authz_batches_total", "pipeline batches", s.batches)
            .counter(
                "nexus_authz_coalesced_total",
                "requests coalesced into an existing batch",
                s.coalesced,
            )
            .counter(
                "nexus_authz_rejected_total",
                "submissions shed at the high-water mark",
                s.rejected,
            )
            .counter(
                "nexus_authz_external_batches_total",
                "batches run on the external lane",
                s.external_batches,
            )
            .counter(
                "nexus_authz_callback_panics_total",
                "ticket callbacks that panicked",
                s.callback_panics,
            )
            .counter(
                "nexus_authz_executor_panics_total",
                "batches whose executor panicked",
                s.executor_panics,
            )
            .gauge(
                "nexus_authz_max_batch_seen",
                "largest batch observed",
                i64::try_from(s.max_batch_seen).unwrap_or(i64::MAX),
            )
            .gauge(
                "nexus_authz_embedded_depth",
                "embedded-lane backlog (queued requests)",
                i64::try_from(s.embedded_depth).unwrap_or(i64::MAX),
            )
            .gauge(
                "nexus_authz_external_depth",
                "external-lane backlog (queued requests)",
                i64::try_from(s.external_depth).unwrap_or(i64::MAX),
            );
        }
        r.counter(
            "nexus_audit_recorded_total",
            "audit events recorded (slot claims)",
            self.telemetry.audit.recorded(),
        )
        .counter(
            "nexus_audit_dropped_total",
            "audit events dropped in slot races",
            self.telemetry.audit.dropped(),
        );
        let a = self.attest_stats();
        r.counter(
            "nexus_attest_analyses_total",
            "analyzer runs (analysis-cache misses)",
            a.analyses_run,
        )
        .counter(
            "nexus_attest_analysis_cache_hits_total",
            "attestation requests served from cached analysis results",
            a.analysis_cache_hits,
        )
        .counter(
            "nexus_attest_minted_total",
            "analyzer credentials minted",
            a.credentials_minted,
        )
        .counter(
            "nexus_attest_refused_total",
            "analyzer credentials refused",
            a.credentials_refused,
        )
        .counter(
            "nexus_attest_revoked_total",
            "analyzer credentials revoked (binary changed)",
            a.credentials_revoked,
        );
        let ds = self.dist_stats();
        r.counter(
            "nexus_dist_remote_mints_total",
            "labels minted from delivered broadcast ops",
            ds.remote_mints,
        )
        .counter(
            "nexus_dist_remote_revocations_total",
            "labels revoked (and fenced) from delivered broadcast ops",
            ds.remote_revocations,
        );
        for stage in Stage::ALL {
            r.histogram(
                &format!("nexus_authz_stage_{}_ns", stage.name()),
                &format!("authorize-path {} stage latency (ns)", stage.name()),
                self.telemetry.stages.snapshot(stage),
            );
        }
        r.finish()
    }

    /// The most recent `n` decision audit events, newest first (see
    /// [`AuditEvent`]). Cache hits are sampled
    /// (`ObsConfig::hit_sample_shift`); misses, denials, and faults
    /// are always journaled while telemetry is enabled, and denials
    /// carry the subgoal the prover refuted.
    pub fn audit_recent(&self, n: usize) -> Vec<AuditEvent> {
        self.telemetry.audit.recent(n)
    }

    // ---- system calls ----

    fn require_allowed(&self, pid: u64, name: &'static str) -> Result<(), KernelError> {
        if self.ipds.read().get(pid)?.relinquished.contains(name) {
            return Err(KernelError::SyscallRevoked(name));
        }
        Ok(())
    }

    /// Dispatch a system call for `pid`, running the redirector chain
    /// when syscall interposition is enabled.
    pub fn syscall(&self, pid: u64, call: Syscall) -> Result<SysRet, KernelError> {
        self.require_allowed(pid, call.name())?;
        let cfg = self.config();
        if cfg.interpose_syscalls {
            let mut ipc_call = IpcCall {
                subject: pid,
                operation: call.name().to_string(),
                object: String::new(),
                args: Vec::new(),
            };
            if let ChainOutcome::Blocked { monitor } =
                self.redirector.dispatch(SYSCALL_CHANNEL, &mut ipc_call)?
            {
                return Err(KernelError::Blocked { monitor });
            }
        }
        match call {
            Syscall::Null => Ok(SysRet::Unit),
            Syscall::GetPpid => Ok(SysRet::Int(self.ipds.read().ppid(pid)?)),
            Syscall::GetTimeOfDay => {
                Ok(SysRet::Int(self.clock.fetch_add(1, Ordering::Relaxed) + 1))
            }
            Syscall::Yield => {
                self.sched.next();
                Ok(SysRet::Unit)
            }
            Syscall::Open(path) => {
                let object = ResourceId::file(&path);
                if cfg.authorize_fs && !self.authorize(pid, "open", &object)? {
                    return Err(KernelError::AccessDenied {
                        reason: format!("open {path}"),
                    });
                }
                self.fs_server_hop(pid, b"open")?;
                Ok(SysRet::Int(self.fs.lock().open(&path)?))
            }
            Syscall::Close(fd) => {
                self.fs_server_hop(pid, b"close")?;
                self.fs.lock().close(fd)?;
                Ok(SysRet::Unit)
            }
            Syscall::Read(fd, n) => {
                let path = self.fs.lock().path_of(fd)?.to_string();
                let object = ResourceId::file(&path);
                if cfg.authorize_fs && !self.authorize(pid, "read", &object)? {
                    return Err(KernelError::AccessDenied {
                        reason: format!("read {path}"),
                    });
                }
                self.fs_server_hop(pid, b"read")?;
                Ok(SysRet::Data(self.fs.lock().read(fd, n)?))
            }
            Syscall::Write(fd, data) => {
                let path = self.fs.lock().path_of(fd)?.to_string();
                let object = ResourceId::file(&path);
                if cfg.authorize_fs && !self.authorize(pid, "write", &object)? {
                    return Err(KernelError::AccessDenied {
                        reason: format!("write {path}"),
                    });
                }
                self.fs_server_hop(pid, b"write")?;
                Ok(SysRet::Int(self.fs.lock().write(fd, &data)? as u64))
            }
        }
    }

    /// Model the client-server microkernel round trip to the
    /// user-level file server: request and reply each cross an IPC
    /// port (the cost that makes Table 1's file rows 2–3× Linux).
    /// The IPC lock is held across the hop so concurrent hops pair
    /// their own requests with their own replies.
    fn fs_server_hop(&self, pid: u64, op: &[u8]) -> Result<(), KernelError> {
        let mut ipc = self.ipc.lock();
        ipc.send(pid, self.fs_port, op.to_vec())?;
        let _ = ipc.recv(self.fs_port)?;
        ipc.send(0, self.fs_reply_port, b"ok".to_vec())?;
        let _ = ipc.recv(self.fs_reply_port)?;
        Ok(())
    }

    // ---- filesystem management ----

    /// Create a file: the file server executes it and deposits the
    /// ownership label in the creator's labelstore (§2.6).
    pub fn fs_create(&self, pid: u64, path: &str) -> Result<(), KernelError> {
        self.fs.lock().create(path, pid)?;
        let object = ResourceId::file(path);
        self.grant_ownership(pid, &object)?;
        Ok(())
    }

    /// Direct whole-file read (used by services; still authorized).
    pub fn fs_read_all(&self, pid: u64, path: &str) -> Result<Vec<u8>, KernelError> {
        let object = ResourceId::file(path);
        if self.config().authorize_fs && !self.authorize(pid, "read", &object)? {
            return Err(KernelError::AccessDenied {
                reason: format!("read {path}"),
            });
        }
        self.fs.lock().read_all(path)
    }

    /// Direct whole-file write (authorized).
    pub fn fs_write_all(&self, pid: u64, path: &str, data: &[u8]) -> Result<(), KernelError> {
        let object = ResourceId::file(path);
        if self.config().authorize_fs && !self.authorize(pid, "write", &object)? {
            return Err(KernelError::AccessDenied {
                reason: format!("write {path}"),
            });
        }
        self.fs.lock().write_all(path, data)
    }

    /// Raw filesystem access for resource managers (bypasses goals —
    /// kernel-internal use only).
    pub fn fs_raw(&self) -> MutexGuard<'_, RamFs> {
        self.fs.lock()
    }

    // ---- IPC ----

    /// Create a port for `pid`; the kernel's binding label lands in
    /// the owner's labelstore.
    pub fn create_port(&self, pid: u64) -> Result<u64, KernelError> {
        let (id, label) = self.ipc.lock().create_port(pid);
        if let Formula::Says(speaker, stmt) = label {
            self.kernel_label(pid, speaker, *stmt)?;
        }
        Ok(id)
    }

    /// Send on a port, traversing any interposed monitors.
    pub fn ipc_send(&self, pid: u64, port: u64, msg: Vec<u8>) -> Result<(), KernelError> {
        let mut call = IpcCall {
            subject: pid,
            operation: "send".into(),
            object: format!("ipc:{port}"),
            args: msg,
        };
        if let ChainOutcome::Blocked { monitor } = self.redirector.dispatch(port, &mut call)? {
            return Err(KernelError::Blocked { monitor });
        }
        self.ipc.lock().send(pid, port, call.args)
    }

    /// Receive on an owned port.
    pub fn ipc_recv(&self, pid: u64, port: u64) -> Result<(u64, Vec<u8>), KernelError> {
        let mut ipc = self.ipc.lock();
        if ipc.owner_of(port)? != pid {
            return Err(KernelError::AccessDenied {
                reason: format!("pid {pid} does not own port {port}"),
            });
        }
        ipc.recv(port)
    }

    /// The `interpose` system call: install a reference monitor on a
    /// channel. Interposition is subject to consent — authorized
    /// against the channel's `interpose` goal (default: port owner).
    pub fn interpose(
        &self,
        pid: u64,
        port: u64,
        interceptor: Box<dyn Interceptor>,
        level: MonitorLevel,
    ) -> Result<(), KernelError> {
        let object = ResourceId::ipc(port);
        // The port owner holds the ownership label from create_port;
        // others must satisfy an explicit goal. The syscall channel is
        // a kernel-owned virtual port.
        let owner = if port == SYSCALL_CHANNEL {
            0
        } else {
            self.ipc.lock().owner_of(port)?
        };
        let authorized = if owner == pid || pid == 0 {
            true
        } else {
            self.authorize(pid, "interpose", &object)?
        };
        if !authorized {
            return Err(KernelError::AccessDenied {
                reason: format!("interpose on port {port}"),
            });
        }
        self.redirector.install(port, interceptor, level);
        Ok(())
    }

    // ---- introspection (§3.1) ----

    /// Publish an application key=value binding under
    /// `/proc/app/<pid>/<key>`.
    pub fn publish(&self, pid: u64, key: &str, value: &str) -> Result<(), KernelError> {
        self.ipds
            .write()
            .get_mut(pid)?
            .published
            .insert(key.to_string(), value.to_string());
        Ok(())
    }

    /// Read an introspection node: a live, greybox view of kernel
    /// state. Paths mirror the paper's /proc conventions.
    pub fn introspect_read(&self, path: &str) -> Result<String, KernelError> {
        let parts: Vec<&str> = path.trim_start_matches('/').split('/').collect();
        match parts.as_slice() {
            ["proc", "ipds"] => Ok(self
                .ipds
                .read()
                .pids()
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(",")),
            ["proc", "ipd", pid, field] => {
                let pid: u64 = pid
                    .parse()
                    .map_err(|_| KernelError::NoSuchNode(path.into()))?;
                let ipds = self.ipds.read();
                let ipd = ipds.get(pid)?;
                match *field {
                    "name" => Ok(format!("name={}", ipd.name)),
                    "parent" => Ok(format!("parent={}", ipd.parent)),
                    "hash" => Ok(format!("hash={}", ipd.launch_hash.to_hex())),
                    _ => Err(KernelError::NoSuchNode(path.into())),
                }
            }
            ["proc", "ipc", "edges"] => Ok(self
                .ipc
                .lock()
                .edges()
                .iter()
                .map(|(a, b)| format!("{a}->{b}"))
                .collect::<Vec<_>>()
                .join(",")),
            ["proc", "ipc", port, "owner"] => {
                let port: u64 = port
                    .parse()
                    .map_err(|_| KernelError::NoSuchNode(path.into()))?;
                Ok(format!("owner={}", self.ipc.lock().owner_of(port)?))
            }
            ["proc", "sched", client, field] => {
                let sched = &self.sched;
                match *field {
                    "weight" => sched
                        .weight(client)
                        .map(|w| format!("weight={w}"))
                        .ok_or_else(|| KernelError::NoSuchNode(path.into())),
                    "usage" => sched
                        .usage(client)
                        .map(|u| format!("usage={u}"))
                        .ok_or_else(|| KernelError::NoSuchNode(path.into())),
                    "share" => sched
                        .share(client)
                        .map(|s| format!("share={s:.4}"))
                        .ok_or_else(|| KernelError::NoSuchNode(path.into())),
                    _ => Err(KernelError::NoSuchNode(path.into())),
                }
            }
            ["proc", "app", pid, key] => {
                let pid: u64 = pid
                    .parse()
                    .map_err(|_| KernelError::NoSuchNode(path.into()))?;
                self.ipds
                    .read()
                    .get(pid)?
                    .published
                    .get(*key)
                    .map(|v| format!("{key}={v}"))
                    .ok_or_else(|| KernelError::NoSuchNode(path.into()))
            }
            _ => Err(KernelError::NoSuchNode(path.into())),
        }
    }

    /// Goal-guarded introspection read: sensitive nodes carry goal
    /// formulas like any other resource.
    pub fn introspect_read_authorized(&self, pid: u64, path: &str) -> Result<String, KernelError> {
        let object = ResourceId::new("proc", path);
        if self.goals.get(&object, &OpName::from("read")).is_some()
            && !self.authorize(pid, "read", &object)?
        {
            return Err(KernelError::AccessDenied {
                reason: format!("introspect {path}"),
            });
        }
        self.introspect_read(path)
    }

    /// The raw IPC connectivity graph (pid → pid edges) for labeling
    /// functions like the IPC analyzer.
    pub fn ipc_graph(&self) -> Vec<(u64, u64)> {
        self.ipc.lock().edges().to_vec()
    }

    /// Goal store epoch (diagnostics).
    pub fn goal_epoch(&self) -> u64 {
        self.goals.epoch()
    }

    /// Resize the kernel decision cache at runtime (§2.8) — used by
    /// the associativity ablation (Figure 4 hit-rate deltas) and the
    /// fig9 A/B harness to flip between the seqlock and mutexed read
    /// paths. The fence afterwards drains evaluations that may still
    /// be filling the superseded table, so no decision computed before
    /// the resize lands unvalidated in the new one.
    pub fn resize_decision_cache(&self, cfg: DecisionCacheConfig) {
        self.dcache.resize(cfg);
        self.fence_in_flight_authz();
    }
}

/// Where [`Nexus::route_authz`] sent a request.
enum AuthzRoute {
    /// The decision cache answered.
    Cached(bool),
    /// Submitted to the running pipeline.
    Submitted(AuthzTicket),
    /// Caller evaluates inline with this already-resolved subject.
    Evaluate(Principal),
}

/// Everything request-specific the guard consumes, assembled once per
/// request per evaluation attempt.
struct PreparedRequest {
    subject: Principal,
    labels: Vec<Formula>,
    proof: Option<Proof>,
    auto_attempted: bool,
    /// For auto-proved requests whose search failed: the deepest
    /// subgoal the prover refuted (the "why" behind a deny), carried
    /// into the audit journal. `None` when the proof succeeded, the
    /// request supplied/stored a proof, or the legacy one-shot prover
    /// ran.
    refuted: Option<Formula>,
}

/// The kernel-side telemetry bundle: stage-latency histograms (shared
/// by `Arc` with the pipeline so pool workers record into the same
/// buckets), the decision audit journal, and the cache-hit sampler.
/// All three are live regardless of `ObsConfig::enabled`; the stage
/// timers' enabled flag is the single master switch the hot paths
/// consult (one relaxed load when telemetry is off).
/// Live counters behind [`Nexus::attest_stats`] (the analyzer
/// credential path, ISSUE 8).
#[derive(Default)]
struct AttestCounters {
    analyses: AtomicU64,
    cache_hits: AtomicU64,
    minted: AtomicU64,
    refused: AtomicU64,
    revoked: AtomicU64,
}

/// Live counters behind [`Nexus::dist_stats`] (the replicated
/// credential path, ISSUE 9): label changes this kernel applied
/// because a remote broadcast op was delivered, not because a local
/// process invoked a system call.
#[derive(Default)]
struct DistCounters {
    remote_mints: AtomicU64,
    remote_revocations: AtomicU64,
}

/// A frozen copy of the replication-path counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistStats {
    /// Labels minted on delivery of a remote broadcast op.
    pub remote_mints: u64,
    /// Labels revoked (with the full fence) on delivery of a remote
    /// broadcast op.
    pub remote_revocations: u64,
}

/// A frozen copy of the attestation-path counters: analyzer runs,
/// analysis-cache reuse, and the mint/refuse/revoke tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttestStats {
    /// Analyses actually run (analysis-cache misses).
    pub analyses_run: u64,
    /// Attestation requests answered from a cached analysis result.
    pub analysis_cache_hits: u64,
    /// Credentials minted into labelstores.
    pub credentials_minted: u64,
    /// Credentials refused (analysis found a witness).
    pub credentials_refused: u64,
    /// Credentials revoked after re-analysis or binary change.
    pub credentials_revoked: u64,
}

struct KernelTelemetry {
    stages: Arc<StageTimers>,
    audit: AuditJournal,
    sampler: Sampler,
}

impl KernelTelemetry {
    fn new(obs: &ObsConfig) -> Self {
        KernelTelemetry {
            stages: Arc::new(StageTimers::new(obs.enabled)),
            audit: AuditJournal::new(obs.audit_capacity),
            sampler: Sampler::new(obs.hit_sample_shift),
        }
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.stages.enabled()
    }
}

fn verdict_of(allow: bool) -> AuditVerdict {
    if allow {
        AuditVerdict::Allow
    } else {
        AuditVerdict::Deny
    }
}

/// Nanoseconds between two instants, saturating (monotonic clocks can
/// still compare non-monotonically across cores on some platforms).
fn span_ns(start: Instant, end: Instant) -> u64 {
    u64::try_from(end.saturating_duration_since(start).as_nanos()).unwrap_or(u64::MAX)
}

/// The per-process facts the submission path reads on every request,
/// published into the `ipd_hot` snapshot at spawn. The shape word is
/// the labelstore's own live atomic (shared by `Arc`), so `say`/
/// `transfer_label` update it in place with no republication.
#[derive(Clone)]
struct IpdHot {
    principal: Principal,
    name: String,
    shape: Arc<AtomicU64>,
}

/// What a lock-free evaluation captured before reading the stores;
/// see [`Nexus::stamp_still_valid`] for how each half is used.
struct ReadStamp {
    epochs: (u64, u64, u64),
    goal_v: u64,
    proof_v: u64,
}

fn outcome_of(allow: bool) -> AuthzOutcome {
    if allow {
        AuthzOutcome::Allow
    } else {
        AuthzOutcome::Deny
    }
}

/// The pipeline's view of the kernel: holds a weak reference so the
/// pool never keeps a torn-down kernel alive; batches arriving after
/// teardown fault instead of evaluating.
struct NexusExecutor {
    kernel: Weak<Nexus>,
}

impl BatchExecutor for NexusExecutor {
    fn execute_batch(&self, key: &BatchKey, reqs: &[AuthzRequest]) -> Vec<AuthzOutcome> {
        match self.kernel.upgrade() {
            Some(kernel) => kernel.evaluate_authz_batch(key, reqs),
            None => vec![AuthzOutcome::Fault("kernel torn down".into()); reqs.len()],
        }
    }

    fn prover_memo_stats(&self) -> (u64, u64) {
        match self.kernel.upgrade() {
            Some(kernel) => {
                let s = kernel.guard.prover_stats();
                (s.memo_hits, s.memo_misses)
            }
            None => (0, 0),
        }
    }
}
