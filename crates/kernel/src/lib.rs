//! # The Nexus kernel simulator
//!
//! A user-space model of the Nexus operating system (Sirer et al.,
//! SOSP 2011) with the same abstractions and communication topology as
//! the native x86 microkernel the paper describes:
//!
//! * [`ipd`] — isolated protection domains (processes), each a
//!   subprincipal of the kernel with its own labelstore;
//! * [`ipc`] — ports and channels; all component interaction flows
//!   over IPC, with kernel-minted port-binding labels;
//! * [`interpose`] — the redirector table and composable reference
//!   monitors (§3.2), including verdict caching;
//! * [`sched`] — proportional-share (stride) scheduling whose state is
//!   exported through introspection for resource attestation (§4.1);
//! * [`fs`] — the RAM filesystem behind the user-level file server;
//! * [`nic`] — the simulated network device and the UDP-echo paths of
//!   Figure 7, including the device-driver reference monitor;
//! * [`nexus`] — boot (§3.4), system calls (Table 1's set), the
//!   authorization path of Figure 1 (decision cache → guard → goal),
//!   and the introspection namespace (§3.1).
//!
//! See DESIGN.md at the workspace root for what is simulated versus
//! the paper's hardware and why the substitutions preserve the
//! evaluated behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fs;
pub mod interpose;
pub mod ipc;
pub mod ipd;
pub mod nexus;
pub mod nic;
pub mod sched;

pub use error::KernelError;
pub use fs::RamFs;
pub use interpose::{
    ChainOutcome, Interceptor, InterposeStats, IpcCall, MonitorLevel, Redirector, Verdict,
};
pub use ipc::IpcTable;
pub use ipd::{Ipd, IpdTable};
pub use nexus::{
    AttestStats, BootImages, DistStats, Nexus, NexusConfig, SysRet, Syscall, SYSCALL_CHANNEL,
};
pub use nexus_authzd::{AuthzOutcome, AuthzTicket, GuardPoolConfig, OverflowPolicy, PoolStats};
pub use nexus_obs::{
    AuditEvent, AuditPath, AuditVerdict, HistogramSnapshot, ObsConfig, TelemetrySnapshot,
};
pub use nic::{Ddrm, EchoPath, EchoWorld, NicDevice};
pub use sched::StrideScheduler;
