//! Simulated network device and the UDP-echo packet paths of Figure 7.
//!
//! The paper measures interpositioning overhead by installing
//! progressively more of the machinery on the packet path of a
//! trivial UDP echo server: in-interrupt echo (kernel / user), a
//! separate server process reached over IPC (kernel / user driver),
//! and finally device-driver reference monitors (DDRMs, \[56\]) in the
//! kernel or in user space, with and without verdict caching.

use crate::error::KernelError;
use crate::interpose::{Interceptor, IpcCall, MonitorLevel, Verdict};
use crate::nexus::Nexus;
use std::collections::VecDeque;

/// A simulated NIC: receive and transmit rings.
#[derive(Debug, Default)]
pub struct NicDevice {
    /// Received frames awaiting the driver.
    pub rx: VecDeque<Vec<u8>>,
    /// Frames queued for transmission.
    pub tx: VecDeque<Vec<u8>>,
}

impl NicDevice {
    /// Empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deliver a frame from the wire.
    pub fn inject(&mut self, frame: Vec<u8>) {
        self.rx.push_back(frame);
    }

    /// Take a transmitted frame off the wire.
    pub fn transmitted(&mut self) -> Option<Vec<u8>> {
        self.tx.pop_front()
    }
}

/// Which packet path to exercise (Figure 7's x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EchoPath {
    /// `kern-int`: echo directly in the kernel interrupt handler.
    KernelInterrupt,
    /// `user-int`: echo in a user driver's handler (one address-space
    /// copy, no IPC).
    UserInterrupt,
    /// `kern-drv`: kernel driver hands the packet to a separate echo
    /// server over IPC.
    KernelDriver,
    /// `user-drv`: user-level driver, IPC to the server, user-level
    /// protocol processing.
    UserDriver,
}

/// The device-driver reference monitor: constrains the driver to a
/// whitelist of operations and a single destination channel, so a
/// buggy or malicious driver cannot copy packet contents elsewhere
/// (§4.1's network-driver confidentiality argument).
pub struct Ddrm {
    /// Operations the driver may perform.
    pub allowed_ops: Vec<String>,
    /// The only IPC object the driver may touch.
    pub allowed_object: String,
}

impl Interceptor for Ddrm {
    fn name(&self) -> &str {
        "ddrm"
    }
    fn on_call(&mut self, call: &mut IpcCall) -> Verdict {
        if self.allowed_ops.iter().any(|o| o == &call.operation)
            && call.object == self.allowed_object
        {
            Verdict::Continue
        } else {
            Verdict::Block
        }
    }
    fn cacheable(&self) -> bool {
        // The DDRM's verdict depends only on (operation, object).
        true
    }
}

/// A configured echo benchmark world.
pub struct EchoWorld {
    /// The device.
    pub nic: NicDevice,
    driver_pid: u64,
    server_pid: u64,
    driver_port: u64,
    server_port: u64,
    path: EchoPath,
}

impl EchoWorld {
    /// Build the echo topology on a booted kernel: a driver IPD, an
    /// echo-server IPD, and their ports. Installing a monitor is a
    /// separate step ([`EchoWorld::install_monitor`]).
    pub fn new(nexus: &Nexus, path: EchoPath) -> Result<EchoWorld, KernelError> {
        let driver_pid = nexus.spawn("nic-driver", b"nic-driver-image");
        let server_pid = nexus.spawn("udp-echo", b"udp-echo-image");
        let driver_port = nexus.create_port(driver_pid)?;
        let server_port = nexus.create_port(server_pid)?;
        Ok(EchoWorld {
            nic: NicDevice::new(),
            driver_pid,
            server_pid,
            driver_port,
            server_port,
            path,
        })
    }

    /// Install a DDRM on the server-bound channel at the given level.
    pub fn install_monitor(&self, nexus: &Nexus, level: MonitorLevel) -> Result<(), KernelError> {
        let ddrm = Ddrm {
            allowed_ops: vec!["send".into()],
            allowed_object: format!("ipc:{}", self.server_port),
        };
        nexus.interpose(0, self.server_port, Box::new(ddrm), level)
    }

    /// The server port (monitored channel).
    pub fn server_port(&self) -> u64 {
        self.server_port
    }

    /// Process one packet through the configured path, returning the
    /// echo. This is the unit of work Figure 7 rates in packets/s.
    pub fn echo(&mut self, nexus: &Nexus, frame: &[u8]) -> Result<Vec<u8>, KernelError> {
        self.nic.inject(frame.to_vec());
        let pkt = self.nic.rx.pop_front().expect("just injected");
        let reply = match self.path {
            EchoPath::KernelInterrupt => pkt,
            EchoPath::UserInterrupt => {
                // One copy into the user driver's address space.
                let copy = pkt.clone();
                drop(pkt);
                copy
            }
            EchoPath::KernelDriver => {
                // Kernel driver → IPC → echo server → reply.
                nexus.ipc_send(self.driver_pid, self.server_port, pkt)?;
                let (_, p) = nexus.ipc_recv(self.server_pid, self.server_port)?;
                nexus.ipc_send(self.server_pid, self.driver_port, p)?;
                let (_, reply) = nexus.ipc_recv(self.driver_pid, self.driver_port)?;
                reply
            }
            EchoPath::UserDriver => {
                // User driver: copy in, user-level header processing,
                // IPC to server and back.
                let mut copy = pkt.clone();
                drop(pkt);
                // Minimal "TCP/IP stack" work: checksum-ish pass.
                let sum: u8 = copy.iter().fold(0u8, |a, b| a.wrapping_add(*b));
                copy.push(sum);
                nexus.ipc_send(self.driver_pid, self.server_port, copy)?;
                let (_, p) = nexus.ipc_recv(self.server_pid, self.server_port)?;
                nexus.ipc_send(self.server_pid, self.driver_port, p)?;
                let (_, mut reply) = nexus.ipc_recv(self.driver_pid, self.driver_port)?;
                reply.pop();
                reply
            }
        };
        self.nic.tx.push_back(reply.clone());
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nexus::{BootImages, NexusConfig};
    use nexus_storage::RamDisk;
    use nexus_tpm::Tpm;

    fn boot() -> Nexus {
        Nexus::boot(
            Tpm::new_with_seed(77),
            RamDisk::new(),
            &BootImages::standard(),
            NexusConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn all_paths_echo_correctly() {
        for path in [
            EchoPath::KernelInterrupt,
            EchoPath::UserInterrupt,
            EchoPath::KernelDriver,
            EchoPath::UserDriver,
        ] {
            let nexus = boot();
            let mut world = EchoWorld::new(&nexus, path).unwrap();
            let frame = vec![0xabu8; 100];
            let reply = world.echo(&nexus, &frame).unwrap();
            assert_eq!(reply, frame, "{path:?}");
        }
    }

    #[test]
    fn ddrm_allows_echo_traffic() {
        let nexus = boot();
        let mut world = EchoWorld::new(&nexus, EchoPath::UserDriver).unwrap();
        world.install_monitor(&nexus, MonitorLevel::Kernel).unwrap();
        let reply = world.echo(&nexus, &[1, 2, 3]).unwrap();
        assert_eq!(reply, vec![1, 2, 3]);
    }

    #[test]
    fn ddrm_blocks_offpath_traffic() {
        let nexus = boot();
        let world = EchoWorld::new(&nexus, EchoPath::UserDriver).unwrap();
        world.install_monitor(&nexus, MonitorLevel::Kernel).unwrap();
        // The driver tries to exfiltrate to a foreign port — but the
        // monitor is on the server port, so simulate a disallowed op
        // there: a "recv"-flavored send is not in allowed_ops… instead
        // directly verify that a non-"send" operation on the channel
        // is blocked via a raw redirector dispatch.
        let mut call = crate::interpose::IpcCall {
            subject: 99,
            operation: "dma_read".into(),
            object: format!("ipc:{}", world.server_port()),
            args: vec![],
        };
        let outcome = nexus
            .redirector()
            .dispatch(world.server_port(), &mut call)
            .unwrap();
        assert!(matches!(
            outcome,
            crate::interpose::ChainOutcome::Blocked { .. }
        ));
    }

    #[test]
    fn monitored_path_hits_cache() {
        let nexus = boot();
        let mut world = EchoWorld::new(&nexus, EchoPath::KernelDriver).unwrap();
        world.install_monitor(&nexus, MonitorLevel::Kernel).unwrap();
        for _ in 0..10 {
            world.echo(&nexus, &[0u8; 100]).unwrap();
        }
        let stats = nexus.redirector().stats();
        assert!(stats.invocations >= 10);
        assert!(
            stats.hits >= 9,
            "verdicts should be cached, hits={}",
            stats.hits
        );
    }

    #[test]
    fn nic_rings_fifo() {
        let mut nic = NicDevice::new();
        nic.inject(vec![1]);
        nic.inject(vec![2]);
        assert_eq!(nic.rx.pop_front(), Some(vec![1]));
        assert_eq!(nic.transmitted(), None);
        nic.tx.push_back(vec![3]);
        assert_eq!(nic.transmitted(), Some(vec![3]));
    }
}
