//! Interpositioning (§3.2): synthetic trust via reference monitors.
//!
//! The `interpose` system call binds a reference monitor to an IPC
//! channel. Every call on the channel is rerouted through the
//! monitor, which may inspect and modify arguments, block the call,
//! and see (and modify) the return. Since *all* Nexus system calls go
//! through IPC, a monitor can mediate a process's entire interaction
//! with its environment. Interpositioning composes: multiple monitors
//! stack on one channel, and `interpose` itself can be monitored.

use crate::error::KernelError;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A call crossing an interposed channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpcCall {
    /// Calling pid.
    pub subject: u64,
    /// Operation name.
    pub operation: String,
    /// Object / target description.
    pub object: String,
    /// Marshaled arguments.
    pub args: Vec<u8>,
}

/// Monitor verdict for a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Let the call proceed (possibly with modified arguments).
    Continue,
    /// Block the call.
    Block,
}

/// A reference monitor.
pub trait Interceptor: Send {
    /// Monitor name (appears in block errors and audit logs).
    fn name(&self) -> &str;
    /// Inspect/modify/block an outgoing call.
    fn on_call(&mut self, call: &mut IpcCall) -> Verdict;
    /// Inspect/modify the response on the return path.
    fn on_return(&mut self, _call: &IpcCall, _response: &mut Vec<u8>) {}
    /// May the redirector cache this monitor's verdicts per
    /// (subject, operation, object)? Only monitors whose decisions
    /// don't depend on argument bytes or mutable state may say yes.
    fn cacheable(&self) -> bool {
        false
    }
}

/// Where a monitor runs. User-level monitors pay an extra marshaling
/// round-trip per call (they live in their own IPD and are reached by
/// IPC), which is the `kref` vs `uref` gap in Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorLevel {
    /// In-kernel monitor: direct call.
    Kernel,
    /// User-space monitor: marshaled across an IPC boundary.
    User,
}

struct Installed {
    /// Each monitor carries its own lock: the chain is traversed
    /// under a read lock, and stateful monitors (`on_call` takes
    /// `&mut self`) serialize only on themselves.
    interceptor: Mutex<Box<dyn Interceptor>>,
    level: MonitorLevel,
}

/// Outcome of running a channel's monitor chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainOutcome {
    /// All monitors passed; the (possibly modified) call may proceed.
    Proceed,
    /// A monitor blocked the call.
    Blocked {
        /// The blocking monitor's name.
        monitor: String,
    },
}

/// The kernel's redirector table: per-channel monitor chains plus a
/// verdict cache. Internally synchronized — `dispatch` takes `&self`
/// so interposed channels can carry traffic from many threads; the
/// chain map is read-mostly (a reader-writer lock), each monitor has
/// its own lock, and the verdict cache is a mutex.
pub struct Redirector {
    chains: RwLock<HashMap<u64, Vec<Installed>>>,
    /// Verdict cache keyed by (port, subject, operation, object) —
    /// only consulted/filled when every monitor on the chain is
    /// cacheable. This is the decision caching whose effect Figure 7
    /// measures (`min` vs `max`).
    cache: Mutex<HashMap<(u64, u64, String, String), ChainOutcome>>,
    /// Global switch for the verdict cache.
    caching_enabled: AtomicBool,
    hits: AtomicU64,
    invocations: AtomicU64,
}

impl Default for Redirector {
    fn default() -> Self {
        Self::new()
    }
}

impl Redirector {
    /// Empty table with caching enabled.
    pub fn new() -> Self {
        Redirector {
            chains: RwLock::new(HashMap::new()),
            cache: Mutex::new(HashMap::new()),
            caching_enabled: AtomicBool::new(true),
            hits: AtomicU64::new(0),
            invocations: AtomicU64::new(0),
        }
    }

    /// Enable or disable the verdict cache (benchmark ablations).
    pub fn set_caching(&self, enabled: bool) {
        self.caching_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is the verdict cache enabled?
    pub fn caching_enabled(&self) -> bool {
        self.caching_enabled.load(Ordering::Relaxed)
    }

    /// The `interpose` system call: append a monitor to a channel's
    /// chain. (Authorization — the consent goal formula — is enforced
    /// by the caller in `Nexus::interpose`.)
    pub fn install(&self, port: u64, interceptor: Box<dyn Interceptor>, level: MonitorLevel) {
        self.chains
            .write()
            .entry(port)
            .or_default()
            .push(Installed {
                interceptor: Mutex::new(interceptor),
                level,
            });
        // New monitor: previous verdicts no longer valid for the port.
        self.cache.lock().retain(|(p, _, _, _), _| *p != port);
    }

    /// Remove all monitors from a channel.
    pub fn clear(&self, port: u64) {
        self.chains.write().remove(&port);
        self.cache.lock().retain(|(p, _, _, _), _| *p != port);
    }

    /// Is the channel interposed?
    pub fn is_interposed(&self, port: u64) -> bool {
        self.chains
            .read()
            .get(&port)
            .map(|c| !c.is_empty())
            .unwrap_or(false)
    }

    /// Run the chain for `port` over `call`. Marshaling: each
    /// kernel-mode switch re-encodes the call; user-level monitors
    /// round-trip the encoding once more. A marshaling failure is an
    /// error — monitors must never see an empty or stale payload, or
    /// a call could slip past its monitor with a bogus encoding.
    pub fn dispatch(&self, port: u64, call: &mut IpcCall) -> Result<ChainOutcome, KernelError> {
        let chains = self.chains.read();
        let chain = match chains.get(&port) {
            Some(c) if !c.is_empty() => c,
            _ => return Ok(ChainOutcome::Proceed),
        };
        self.invocations.fetch_add(1, Ordering::Relaxed);
        // Re-queried on every dispatch (not snapshotted at install):
        // a stateful monitor may stop being cacheable over its life.
        let caching =
            self.caching_enabled() && chain.iter().all(|i| i.interceptor.lock().cacheable());
        let key = (
            port,
            call.subject,
            call.operation.clone(),
            call.object.clone(),
        );
        if caching {
            if let Some(outcome) = self.cache.lock().get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(outcome.clone());
            }
        }
        for installed in chain.iter() {
            // Parameter marshaling at the kernel-mode switch; user
            // monitors marshal across their own address space too.
            let encoded = serde_json::to_vec(&*call)
                .map_err(|e| KernelError::Interpose(format!("marshal call: {e}")))?;
            if installed.level == MonitorLevel::User {
                let copy: IpcCall = serde_json::from_slice(&encoded)
                    .map_err(|e| KernelError::Interpose(format!("unmarshal call: {e}")))?;
                *call = copy;
            }
            let mut interceptor = installed.interceptor.lock();
            if interceptor.on_call(call) == Verdict::Block {
                let outcome = ChainOutcome::Blocked {
                    monitor: interceptor.name().to_string(),
                };
                if caching {
                    self.cache.lock().insert(key, outcome.clone());
                }
                return Ok(outcome);
            }
        }
        if caching {
            self.cache.lock().insert(key, ChainOutcome::Proceed);
        }
        Ok(ChainOutcome::Proceed)
    }

    /// Run the return path for `port`.
    pub fn dispatch_return(&self, port: u64, call: &IpcCall, response: &mut Vec<u8>) {
        if let Some(chain) = self.chains.read().get(&port) {
            for installed in chain.iter().rev() {
                installed.interceptor.lock().on_return(call, response);
            }
        }
    }

    /// Verdict-cache statistics snapshot.
    pub fn stats(&self) -> InterposeStats {
        InterposeStats {
            hits: self.hits.load(Ordering::Relaxed),
            invocations: self.invocations.load(Ordering::Relaxed),
        }
    }
}

/// Redirector statistics: interposed-dispatch verdict caching.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterposeStats {
    /// Dispatches answered from the verdict cache.
    pub hits: u64,
    /// Total dispatches that traversed an interposed channel.
    pub invocations: u64,
}

impl InterposeStats {
    /// Hit fraction (0 when nothing dispatched).
    pub fn hit_rate(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.hits as f64 / self.invocations as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct BlockWrites {
        cacheable: bool,
    }
    impl Interceptor for BlockWrites {
        fn name(&self) -> &str {
            "block-writes"
        }
        fn on_call(&mut self, call: &mut IpcCall) -> Verdict {
            if call.operation == "write" {
                Verdict::Block
            } else {
                Verdict::Continue
            }
        }
        fn cacheable(&self) -> bool {
            self.cacheable
        }
    }

    struct Uppercase;
    impl Interceptor for Uppercase {
        fn name(&self) -> &str {
            "uppercase"
        }
        fn on_call(&mut self, call: &mut IpcCall) -> Verdict {
            call.args = call.args.to_ascii_uppercase();
            Verdict::Continue
        }
        fn on_return(&mut self, _call: &IpcCall, response: &mut Vec<u8>) {
            response.push(b'!');
        }
    }

    fn call(op: &str) -> IpcCall {
        IpcCall {
            subject: 7,
            operation: op.into(),
            object: "disk".into(),
            args: b"hello".to_vec(),
        }
    }

    #[test]
    fn uninterposed_channels_pass_through() {
        let r = Redirector::new();
        assert_eq!(
            r.dispatch(1, &mut call("write")).unwrap(),
            ChainOutcome::Proceed
        );
        assert!(!r.is_interposed(1));
    }

    #[test]
    fn monitor_blocks_matching_calls() {
        let r = Redirector::new();
        r.install(
            1,
            Box::new(BlockWrites { cacheable: false }),
            MonitorLevel::Kernel,
        );
        assert_eq!(
            r.dispatch(1, &mut call("read")).unwrap(),
            ChainOutcome::Proceed
        );
        assert!(matches!(
            r.dispatch(1, &mut call("write")).unwrap(),
            ChainOutcome::Blocked { .. }
        ));
    }

    #[test]
    fn monitors_can_rewrite_arguments_and_returns() {
        let r = Redirector::new();
        r.install(1, Box::new(Uppercase), MonitorLevel::Kernel);
        let mut c = call("read");
        r.dispatch(1, &mut c).unwrap();
        assert_eq!(c.args, b"HELLO");
        let mut resp = b"ok".to_vec();
        r.dispatch_return(1, &c, &mut resp);
        assert_eq!(resp, b"ok!");
    }

    #[test]
    fn chains_compose_in_order() {
        let r = Redirector::new();
        r.install(1, Box::new(Uppercase), MonitorLevel::Kernel);
        r.install(
            1,
            Box::new(BlockWrites { cacheable: false }),
            MonitorLevel::Kernel,
        );
        // Uppercase runs, then BlockWrites blocks.
        let mut c = call("write");
        assert!(matches!(
            r.dispatch(1, &mut c).unwrap(),
            ChainOutcome::Blocked { .. }
        ));
        assert_eq!(c.args, b"HELLO", "earlier monitor already ran");
    }

    #[test]
    fn cacheable_verdicts_are_cached() {
        let r = Redirector::new();
        r.install(
            1,
            Box::new(BlockWrites { cacheable: true }),
            MonitorLevel::Kernel,
        );
        for _ in 0..5 {
            r.dispatch(1, &mut call("read")).unwrap();
        }
        let stats = r.stats();
        assert_eq!(stats.invocations, 5);
        assert_eq!(stats.hits, 4);
        assert!((stats.hit_rate() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn non_cacheable_monitors_rerun() {
        let r = Redirector::new();
        r.install(
            1,
            Box::new(BlockWrites { cacheable: false }),
            MonitorLevel::Kernel,
        );
        for _ in 0..5 {
            r.dispatch(1, &mut call("read")).unwrap();
        }
        assert_eq!(r.stats().hits, 0);
    }

    #[test]
    fn caching_can_be_disabled() {
        let r = Redirector::new();
        r.set_caching(false);
        r.install(
            1,
            Box::new(BlockWrites { cacheable: true }),
            MonitorLevel::Kernel,
        );
        for _ in 0..5 {
            r.dispatch(1, &mut call("read")).unwrap();
        }
        assert_eq!(r.stats().hits, 0);
    }

    #[test]
    fn install_invalidates_port_cache() {
        let r = Redirector::new();
        r.install(
            1,
            Box::new(BlockWrites { cacheable: true }),
            MonitorLevel::Kernel,
        );
        r.dispatch(1, &mut call("write")).unwrap();
        // Installing another monitor resets cached verdicts.
        r.install(1, Box::new(Uppercase), MonitorLevel::Kernel);
        // Uppercase is not cacheable -> chain not cacheable; verdict
        // still computed fresh (and correct).
        assert!(matches!(
            r.dispatch(1, &mut call("write")).unwrap(),
            ChainOutcome::Blocked { .. }
        ));
    }
}
