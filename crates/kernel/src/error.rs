//! Kernel error type.

use std::fmt;

/// Errors from Nexus kernel operations.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// No such process.
    NoSuchIpd(u64),
    /// No such IPC port.
    NoSuchPort(u64),
    /// Port receive with an empty queue.
    WouldBlock,
    /// The guard denied the operation.
    AccessDenied {
        /// Human-readable denial reason.
        reason: String,
    },
    /// Call was blocked by an interposed reference monitor.
    Blocked {
        /// The monitor that blocked it.
        monitor: String,
    },
    /// Interposition machinery failed (e.g. call marshaling): the
    /// call must fail rather than reach monitors with a bogus
    /// payload.
    Interpose(String),
    /// No such file or directory.
    NoSuchFile(String),
    /// File already exists.
    FileExists(String),
    /// Invalid file descriptor.
    BadFd(u64),
    /// Boot failed (measurement mismatch, storage abort, TPM refusal).
    BootFailure(String),
    /// Propagated logical-attestation error.
    Core(String),
    /// Propagated storage error.
    Storage(String),
    /// The calling process has relinquished this system call.
    SyscallRevoked(&'static str),
    /// Introspection path does not exist.
    NoSuchNode(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchIpd(p) => write!(f, "no such IPD: {p}"),
            KernelError::NoSuchPort(p) => write!(f, "no such IPC port: {p}"),
            KernelError::WouldBlock => write!(f, "operation would block"),
            KernelError::AccessDenied { reason } => write!(f, "access denied: {reason}"),
            KernelError::Blocked { monitor } => write!(f, "blocked by monitor {monitor}"),
            KernelError::Interpose(m) => write!(f, "interposition failure: {m}"),
            KernelError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            KernelError::FileExists(p) => write!(f, "file exists: {p}"),
            KernelError::BadFd(fd) => write!(f, "bad file descriptor: {fd}"),
            KernelError::BootFailure(m) => write!(f, "boot failure: {m}"),
            KernelError::Core(m) => write!(f, "{m}"),
            KernelError::Storage(m) => write!(f, "{m}"),
            KernelError::SyscallRevoked(name) => {
                write!(f, "system call {name} relinquished by caller")
            }
            KernelError::NoSuchNode(p) => write!(f, "no such introspection node: {p}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<nexus_core::CoreError> for KernelError {
    fn from(e: nexus_core::CoreError) -> Self {
        KernelError::Core(e.to_string())
    }
}

impl From<nexus_storage::StorageError> for KernelError {
    fn from(e: nexus_storage::StorageError) -> Self {
        KernelError::Storage(e.to_string())
    }
}
