//! IPC ports and channels.
//!
//! All interaction between Nexus components — including system calls
//! and user-level device drivers — flows over IPC, which is what makes
//! interpositioning (§3.2) a complete mediation point. The kernel
//! authoritatively binds ports to owning processes and mints the
//! corresponding labels (`Nexus says IPC.x speaksfor /proc/ipd/y`),
//! which is how authority processes get attributable channels without
//! cryptography (§2.4, §2.7).

use crate::error::KernelError;
use nexus_nal::{Formula, Principal};
use std::collections::{HashMap, VecDeque};

/// A message on a port.
pub type Message = Vec<u8>;

/// One IPC port.
pub struct Port {
    /// Port number.
    pub id: u64,
    /// Owning process.
    pub owner: u64,
    /// Queued messages (sender pid, payload).
    pub queue: VecDeque<(u64, Message)>,
    /// Pids that have connected (for the IPC connectivity graph).
    pub connected: Vec<u64>,
}

/// The port table.
#[derive(Default)]
pub struct IpcTable {
    ports: HashMap<u64, Port>,
    next: u64,
    /// (sender pid, receiver pid) edges observed — the transitive IPC
    /// connection graph the IPC analyzer walks (§2.2).
    edges: Vec<(u64, u64)>,
    sends: u64,
}

impl IpcTable {
    /// Empty table.
    pub fn new() -> Self {
        IpcTable {
            ports: HashMap::new(),
            next: 1,
            edges: Vec::new(),
            sends: 0,
        }
    }

    /// Create a port owned by `pid`; returns the port id and the
    /// kernel's binding label `Nexus says IPC.<id> speaksfor
    /// /proc/ipd/<pid>`.
    pub fn create_port(&mut self, pid: u64) -> (u64, Formula) {
        let id = self.next;
        self.next += 1;
        self.ports.insert(
            id,
            Port {
                id,
                owner: pid,
                queue: VecDeque::new(),
                connected: Vec::new(),
            },
        );
        let label = Formula::speaksfor(
            Principal::name("IPC").sub(id.to_string()),
            Principal::name(format!("/proc/ipd/{pid}")),
        )
        .says(Principal::name("Nexus"));
        (id, label)
    }

    /// Destroy a port.
    pub fn destroy_port(&mut self, id: u64) -> Result<(), KernelError> {
        self.ports
            .remove(&id)
            .map(|_| ())
            .ok_or(KernelError::NoSuchPort(id))
    }

    /// Look up a port.
    pub fn port(&self, id: u64) -> Result<&Port, KernelError> {
        self.ports.get(&id).ok_or(KernelError::NoSuchPort(id))
    }

    /// Owner of a port.
    pub fn owner_of(&self, id: u64) -> Result<u64, KernelError> {
        Ok(self.port(id)?.owner)
    }

    /// Enqueue a message from `sender` onto port `id`, recording the
    /// connectivity edge.
    pub fn send(&mut self, sender: u64, id: u64, msg: Message) -> Result<(), KernelError> {
        let port = self.ports.get_mut(&id).ok_or(KernelError::NoSuchPort(id))?;
        let receiver = port.owner;
        port.queue.push_back((sender, msg));
        if !port.connected.contains(&sender) {
            port.connected.push(sender);
        }
        if !self.edges.contains(&(sender, receiver)) {
            self.edges.push((sender, receiver));
        }
        self.sends += 1;
        Ok(())
    }

    /// Dequeue the next message for port `id`.
    pub fn recv(&mut self, id: u64) -> Result<(u64, Message), KernelError> {
        let port = self.ports.get_mut(&id).ok_or(KernelError::NoSuchPort(id))?;
        port.queue.pop_front().ok_or(KernelError::WouldBlock)
    }

    /// The directed IPC connectivity graph (sender → receiver pids).
    pub fn edges(&self) -> &[(u64, u64)] {
        &self.edges
    }

    /// Total messages sent (statistics).
    pub fn send_count(&self) -> u64 {
        self.sends
    }

    /// All port ids, ascending.
    pub fn port_ids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.ports.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_nal::parse;

    #[test]
    fn create_binds_owner_and_mints_label() {
        let mut t = IpcTable::new();
        let (id, label) = t.create_port(12);
        assert_eq!(t.owner_of(id).unwrap(), 12);
        assert_eq!(
            label,
            parse(&format!("Nexus says IPC.{id} speaksfor /proc/ipd/12")).unwrap()
        );
    }

    #[test]
    fn send_recv_fifo() {
        let mut t = IpcTable::new();
        let (id, _) = t.create_port(1);
        t.send(2, id, b"first".to_vec()).unwrap();
        t.send(3, id, b"second".to_vec()).unwrap();
        assert_eq!(t.recv(id).unwrap(), (2, b"first".to_vec()));
        assert_eq!(t.recv(id).unwrap(), (3, b"second".to_vec()));
        assert_eq!(t.recv(id), Err(KernelError::WouldBlock));
    }

    #[test]
    fn edges_accumulate_once() {
        let mut t = IpcTable::new();
        let (id, _) = t.create_port(1);
        t.send(2, id, vec![]).unwrap();
        t.send(2, id, vec![]).unwrap();
        t.send(3, id, vec![]).unwrap();
        assert_eq!(t.edges(), &[(2, 1), (3, 1)]);
        assert_eq!(t.send_count(), 3);
    }

    #[test]
    fn destroy_invalidates() {
        let mut t = IpcTable::new();
        let (id, _) = t.create_port(1);
        t.destroy_port(id).unwrap();
        assert!(t.send(2, id, vec![]).is_err());
        assert!(t.destroy_port(id).is_err());
    }
}
