//! Quickstart: boot a Nexus, make statements, set a goal, and watch
//! the guard check a proof.
//!
//! Run with: `cargo run -p nexus-apps --example quickstart`

use nexus_core::ResourceId;
use nexus_kernel::{BootImages, Nexus, NexusConfig, SysRet, Syscall};
use nexus_nal::parse;
use nexus_storage::RamDisk;
use nexus_tpm::Tpm;

fn main() {
    // 1. Measured boot: BIOS, loader, and kernel hashes land in the
    //    TPM's PCRs; first boot takes ownership.
    let nexus = Nexus::boot(
        Tpm::new(),
        RamDisk::new(),
        &BootImages::standard(),
        NexusConfig::default(),
    )
    .expect("boot");
    println!("booted (first boot: {})", nexus.first_boot());

    // 2. Processes are subprincipals of the kernel.
    let alice = nexus.spawn("alice-app", b"alice-binary");
    let bob = nexus.spawn("bob-app", b"bob-binary");
    println!("alice is {}", nexus.principal(alice).unwrap());

    // 3. `say` creates unforgeable labels — no cryptography involved.
    let h = nexus.sys_say(alice, "isTypeSafe(myPlugin)").unwrap();
    println!("alice said: {}", nexus.labels_of(alice).unwrap()[0]);

    // 4. Externalize to a TPM-rooted certificate for remote parties.
    let cert = nexus.externalize(alice, h).unwrap();
    println!(
        "externalized: {} bytes, speaker chain rooted in the EK",
        cert.encoded_len()
    );

    // 5. Files get goal formulas; the default policy admits only the
    //    owner.
    nexus.fs_create(alice, "/alice/notes").unwrap();
    let fd = match nexus.syscall(alice, Syscall::Open("/alice/notes".into())) {
        Ok(SysRet::Int(fd)) => fd,
        other => panic!("open failed: {other:?}"),
    };
    nexus
        .syscall(alice, Syscall::Write(fd, b"my notes".to_vec()))
        .unwrap();
    println!("alice wrote her file");
    assert!(
        nexus
            .syscall(bob, Syscall::Open("/alice/notes".into()))
            .is_err(),
        "bob is denied by the default policy"
    );
    println!("bob was denied by the default policy");

    // 6. Alice grants bob access with an explicit goal formula.
    let bob_principal = nexus.principal(bob).unwrap();
    nexus
        .sys_setgoal(
            alice,
            ResourceId::file("/alice/notes"),
            "open",
            parse(&format!(
                "{bob_principal} says open or {} says open",
                nexus.principal(alice).unwrap()
            ))
            .unwrap(),
        )
        .unwrap();
    assert!(nexus
        .syscall(bob, Syscall::Open("/alice/notes".into()))
        .is_ok());
    println!("after setgoal, bob's own request discharges the goal");

    // 7. The decision cache makes repeat authorizations nearly free.
    for _ in 0..1000 {
        nexus
            .syscall(bob, Syscall::Open("/alice/notes".into()))
            .unwrap();
    }
    let stats = nexus.decision_cache_stats();
    println!(
        "decision cache: {} hits, {} misses, {} guard upcalls total",
        stats.hits,
        stats.misses,
        nexus.guard_upcalls()
    );
}
