//! The BGP protocol verifier (§4): synthetic trust for a legacy
//! speaker, no TPMs on routers required.
//!
//! Run with: `cargo run -p nexus-apps --example bgp_verifier`

use nexus_apps::bgp::{BgpMessage, BgpVerifier};

fn main() {
    let mut verifier = BgpVerifier::new(65001, vec!["192.168.0.0/16".to_string()]);

    // The legacy speaker receives routes from peers; the verifier
    // observes them as a proxy.
    verifier.observe_incoming(&BgpMessage::Advertise {
        prefix: "10.0.0.0/8".into(),
        as_path: vec![65002, 65003],
    });
    println!("observed: 10.0.0.0/8 via [65002, 65003]");

    // Legitimate forwarding extends the received path.
    let ok = BgpMessage::Advertise {
        prefix: "10.0.0.0/8".into(),
        as_path: vec![65001, 65002, 65003],
    };
    assert!(verifier.check_outgoing(&ok).is_ok());
    println!("forwarded with our hop prepended: allowed");

    // A compromised speaker tries to attract traffic with a
    // fabricated short route.
    let evil = BgpMessage::Advertise {
        prefix: "10.0.0.0/8".into(),
        as_path: vec![65001],
    };
    match verifier.check_outgoing(&evil) {
        Err(v) => println!("fabrication blocked: {v}"),
        Ok(()) => unreachable!(),
    }

    // Or to originate someone else's prefix.
    let hijack = BgpMessage::Advertise {
        prefix: "8.8.8.0/24".into(),
        as_path: vec![65001],
    };
    match verifier.check_outgoing(&hijack) {
        Err(v) => println!("hijack blocked: {v}"),
        Ok(()) => unreachable!(),
    }

    // Owned prefixes originate freely.
    let own = BgpMessage::Advertise {
        prefix: "192.168.0.0/16".into(),
        as_path: vec![65001],
    };
    assert!(verifier.check_outgoing(&own).is_ok());
    println!("own prefix originated: allowed");
    println!("violations logged: {}", verifier.violations.len());
}
