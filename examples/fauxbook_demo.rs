//! Fauxbook end to end (§4.1): deploy the three-tier stack, sign up
//! users, make friends, and watch the privacy guarantees hold against
//! both strangers and the developers' own code.
//!
//! Run with: `cargo run -p nexus-apps --example fauxbook_demo`

use nexus_apps::fauxbook::{Fauxbook, WallPolicy, DEFAULT_TENANT};

fn main() {
    // Deployment runs the labeling functions over the tenant code.
    let mut fb = Fauxbook::deploy(DEFAULT_TENANT).expect("deploy");
    println!("attestation labels (the privacy-policy bundle):");
    for label in fb.attestation_labels() {
        println!("  {label}");
    }

    // Malicious tenants never deploy.
    match Fauxbook::deploy("import os\nstore_post(post)\n") {
        Err(e) => println!("\nmalicious tenant rejected at deploy time: {e}"),
        Ok(_) => unreachable!(),
    }

    fb.signup("alice", WallPolicy::Friends).unwrap();
    fb.signup("bob", WallPolicy::Friends).unwrap();
    fb.signup("mallory", WallPolicy::Friends).unwrap();
    let alice = fb.login("alice").unwrap();
    let bob = fb.login("bob").unwrap();
    let mallory = fb.login("mallory").unwrap();

    fb.post(alice, "off to the lake this weekend").unwrap();
    fb.add_friend(alice, "bob").unwrap();

    println!(
        "\nbob (friend) sees: {:?}",
        fb.view_wall(bob, "alice").unwrap()
    );
    println!(
        "mallory (stranger) gets: {}",
        fb.view_wall(mallory, "alice").unwrap_err()
    );

    // Developers' code cannot read the data it shuffles around.
    let err = fb
        .tenant_tries_to_read("x = getattr(post, 'bytes')")
        .unwrap_err();
    println!("tenant reflection attack: {err}");

    // And the cloud provider's scheduler reservation is attestable.
    println!(
        "fauxbook's attested CPU share: {:.0}%",
        fb.attested_share("fauxbook").unwrap() * 100.0
    );
}
