//! The paper's running example (§2): a file that may be read only
//! before a deadline, by processes that provably cannot leak it.
//!
//! Run with: `cargo run -p nexus-apps --example time_sensitive_file`

use nexus_core::{AuthorityKind, FnAuthority, ResourceId};
use nexus_kernel::{BootImages, Nexus, NexusConfig, Syscall};
use nexus_nal::{parse, Formula, Principal, Proof};
use nexus_storage::RamDisk;
use nexus_tpm::Tpm;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let nexus = Nexus::boot(
        Tpm::new(),
        RamDisk::new(),
        &BootImages::standard(),
        NexusConfig::default(),
    )
    .expect("boot");

    let reader = nexus.spawn("reader", b"reader-binary");
    let owner = nexus.spawn("owner", b"owner-binary");
    nexus.fs_create(owner, "/sensitive").unwrap();

    // A trustworthy clock refuses to sign labels — it answers
    // validity queries instead (§2.7).
    let clock = Arc::new(Mutex::new(20110301i64));
    let c = clock.clone();
    nexus.register_authority(
        Principal::name("NTP"),
        Arc::new(FnAuthority(move |s: &Formula| {
            if let Formula::Cmp(op, a, b) = s {
                if let (nexus_nal::Term::Sym(n), nexus_nal::Term::Int(bound)) = (&a.canon(), b) {
                    if n == "TimeNow" {
                        return op.eval(&*c.lock(), bound);
                    }
                }
            }
            false
        })),
        AuthorityKind::External,
    );

    // Goal: deadline not passed AND the reader itself asks.
    let reader_principal = nexus.principal(reader).unwrap();
    nexus
        .sys_setgoal(
            owner,
            ResourceId::file("/sensitive"),
            "open",
            parse(&format!(
                "NTP says TimeNow < 20110319 and {reader_principal} says open"
            ))
            .unwrap(),
        )
        .unwrap();

    // The reader installs its proof: the time conjunct is authority-
    // backed, the request conjunct is its own statement.
    let proof = Proof::AndIntro(
        Box::new(Proof::assume(parse("NTP says TimeNow < 20110319").unwrap())),
        Box::new(Proof::assume(
            parse(&format!("{reader_principal} says open")).unwrap(),
        )),
    );
    println!("proof audit trail:\n{}", proof.render_audit());
    nexus
        .sys_set_proof(reader, "open", &ResourceId::file("/sensitive"), proof)
        .unwrap();

    // Before the deadline: access granted (and NOT cached — the
    // decision depends on an authority).
    assert!(nexus
        .syscall(reader, Syscall::Open("/sensitive".into()))
        .is_ok());
    println!("before the deadline: open succeeds");

    // The deadline passes. The very next request fails: no revocation
    // infrastructure, the authority simply answers differently.
    *clock.lock() = 20110401;
    assert!(nexus
        .syscall(reader, Syscall::Open("/sensitive".into()))
        .is_err());
    println!("after the deadline: open denied, nothing was revoked");
}
