//! The movie player (§4): any binary may stream, as long as an IPC
//! connectivity analysis proves it cannot leak the content.
//!
//! Run with: `cargo run -p nexus-apps --example movie_player`

use nexus_apps::movie_player::{MovieService, StreamDecision};
use nexus_kernel::{BootImages, Nexus, NexusConfig};
use nexus_storage::RamDisk;
use nexus_tpm::Tpm;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let nexus = Nexus::boot(
        Tpm::new(),
        RamDisk::new(),
        &BootImages::standard(),
        NexusConfig::default(),
    )
    .expect("boot");
    nexus.spawn("fileserver", b"fs-image");
    nexus.spawn("netdriver", b"net-image");
    // Note: the player is some unknown binary — no whitelist anywhere.
    let player = nexus.spawn("vlc-nightly-custom-build", b"whatever-binary");
    let analyzer = nexus.spawn("ipc-analyzer", b"analyzer-image");

    let clock = Arc::new(Mutex::new(20110301i64));
    let mut service = MovieService::new(20110319, clock.clone());

    match service.request_stream(&nexus, player, analyzer) {
        StreamDecision::Granted => {
            println!("stream granted: the analyzer proved confinement, hash never divulged")
        }
        StreamDecision::Denied(r) => println!("denied: {r}"),
    }

    // The player opens a channel to the network driver — next request
    // is denied because the *property* no longer holds.
    let net = nexus
        .ipds()
        .pids()
        .into_iter()
        .find(|&p| nexus.ipds().get(p).unwrap().name == "netdriver")
        .unwrap();
    let port = nexus.create_port(net).unwrap();
    nexus.ipc_send(player, port, b"leak!".to_vec()).unwrap();
    match service.request_stream(&nexus, player, analyzer) {
        StreamDecision::Denied(r) => println!("after opening a net channel: denied ({r})"),
        StreamDecision::Granted => unreachable!("leaky player must be denied"),
    }
}
