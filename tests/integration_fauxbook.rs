//! Cross-crate integration: the full Fauxbook stack — kernel, sandbox,
//! cobufs, authorities, and the social graph.

use nexus_apps::fauxbook::{Fauxbook, FauxbookError, WallPolicy, DEFAULT_TENANT};

#[test]
fn end_to_end_social_network() {
    let mut fb = Fauxbook::deploy(DEFAULT_TENANT).unwrap();
    for user in ["alice", "bob", "carol", "dave"] {
        fb.signup(user, WallPolicy::Friends).unwrap();
    }
    let alice = fb.login("alice").unwrap();
    let bob = fb.login("bob").unwrap();
    let carol = fb.login("carol").unwrap();

    fb.post(alice, "post one. ").unwrap();
    fb.post(alice, "post two.").unwrap();
    fb.add_friend(alice, "bob").unwrap();

    // Owner and friend see the wall; a stranger does not.
    assert_eq!(fb.view_wall(alice, "alice").unwrap(), "post one. post two.");
    assert_eq!(fb.view_wall(bob, "alice").unwrap(), "post one. post two.");
    assert!(matches!(
        fb.view_wall(carol, "alice"),
        Err(FauxbookError::Denied(_))
    ));

    // Friendship is mutual here: alice can read bob too.
    fb.post(bob, "bob's post").unwrap();
    assert_eq!(fb.view_wall(alice, "bob").unwrap(), "bob's post");
}

#[test]
fn guarantees_enumerated_in_attestations() {
    let fb = Fauxbook::deploy(DEFAULT_TENANT).unwrap();
    let labels: Vec<String> = fb
        .attestation_labels()
        .iter()
        .map(|l| l.to_string())
        .collect();
    // The privacy-policy bundle covers all three tiers.
    assert!(labels.iter().any(|l| l.contains("importsWhitelisted")));
    assert!(labels.iter().any(|l| l.contains("cobufConfined")));
    assert!(labels.iter().any(|l| l.contains("ddrmConfined")));
    assert!(labels.iter().any(|l| l.contains("syscallsRelinquished")));
}

#[test]
fn developer_cannot_exfiltrate() {
    let mut fb = Fauxbook::deploy(DEFAULT_TENANT).unwrap();
    fb.signup("alice", WallPolicy::Private).unwrap();
    let s = fb.login("alice").unwrap();
    fb.post(s, "super secret").unwrap();

    // Every known exfiltration avenue fails:
    // 1. no byte-reading builtin,
    assert!(fb.tenant_tries_to_read("x = read_bytes(post)").is_err());
    // 2. reflection rewritten,
    assert!(fb.tenant_tries_to_read("x = eval('leak')").is_err());
    // 3. forbidden imports rejected,
    assert!(matches!(
        fb.tenant_tries_to_read("import socket"),
        Err(FauxbookError::TenantRejected(_))
    ));
}

#[test]
fn sessions_bind_owners() {
    let mut fb = Fauxbook::deploy(DEFAULT_TENANT).unwrap();
    fb.signup("alice", WallPolicy::Friends).unwrap();
    fb.signup("eve", WallPolicy::Friends).unwrap();
    let alice = fb.login("alice").unwrap();
    let eve = fb.login("eve").unwrap();
    fb.post(alice, "mine").unwrap();
    // Eve's session cannot impersonate alice: her view request is
    // evaluated with her own session authority answer.
    assert!(fb.view_wall(eve, "alice").is_err());
}

#[test]
fn scheduler_reservation_attested() {
    let fb = Fauxbook::deploy(DEFAULT_TENANT).unwrap();
    // The deployment contracts 3:1 between fauxbook and the other
    // tenant; the introspected share backs the SLA label.
    assert!((fb.attested_share("fauxbook").unwrap() - 0.75).abs() < 1e-9);
    assert!((fb.attested_share("other-tenant").unwrap() - 0.25).abs() < 1e-9);
}
