//! Cross-crate integration: the full authorization pipeline from NAL
//! parsing through labels, goals, proofs, guards, caches, and
//! certificates.

use nexus_core::ResourceId;
use nexus_kernel::{BootImages, Nexus, NexusConfig, Syscall};
use nexus_nal::{parse, prove, Proof, ProverConfig};
use nexus_storage::RamDisk;
use nexus_tpm::Tpm;

fn boot(seed: u64) -> Nexus {
    Nexus::boot(
        Tpm::new_with_seed(seed),
        RamDisk::new(),
        &BootImages::standard(),
        NexusConfig::default(),
    )
    .unwrap()
}

#[test]
fn delegation_chain_across_processes() {
    // A three-party flow: a certifier vouches for a plugin, the
    // platform trusts the certifier for safety statements, and the
    // file owner admits anything the platform calls safe.
    let nexus = boot(1);
    let owner = nexus.spawn("owner", b"owner");
    let certifier = nexus.spawn("certifier", b"certifier");
    let plugin = nexus.spawn("plugin", b"plugin");

    nexus.fs_create(owner, "/protected").unwrap();
    let certifier_p = nexus.principal(certifier).unwrap();
    let plugin_p = nexus.principal(plugin).unwrap();

    // Owner's policy: the certifier must call the requester safe.
    nexus
        .sys_setgoal(
            owner,
            ResourceId::file("/protected"),
            "open",
            parse(&format!("{certifier_p} says safe({plugin_p})")).unwrap(),
        )
        .unwrap();

    // Certifier says the plugin is safe; the label is transferred to
    // the plugin's labelstore (credentials travel with the client).
    let h = nexus
        .sys_say(certifier, &format!("safe({plugin_p})"))
        .unwrap();
    nexus.transfer_label(certifier, h, plugin).unwrap();

    // Auto-prove finds the single-assumption proof.
    assert!(nexus
        .syscall(plugin, Syscall::Open("/protected".into()))
        .is_ok());

    // A different process with no credential is denied.
    let other = nexus.spawn("other", b"other");
    assert!(nexus
        .syscall(other, Syscall::Open("/protected".into()))
        .is_err());
}

#[test]
fn prover_constructed_proof_passes_kernel_guard() {
    let nexus = boot(2);
    let owner = nexus.spawn("owner", b"owner");
    let client = nexus.spawn("client", b"client");
    nexus.fs_create(owner, "/f").unwrap();
    let client_p = nexus.principal(client).unwrap();

    // Policy with delegation: the client's manager can vouch.
    nexus
        .sys_setgoal(
            owner,
            ResourceId::file("/f"),
            "open",
            parse("Manager says ok(request)").unwrap(),
        )
        .unwrap();
    // The manager delegates to the client for `ok` statements, by
    // handoff, and the client says ok itself.
    nexus
        .kernel_label(
            client,
            nexus_nal::Principal::name("Manager"),
            parse(&format!("{client_p} speaksfor Manager on ok")).unwrap(),
        )
        .unwrap();
    let h = nexus.sys_say(client, "ok(request)").unwrap();
    let _ = h;

    // The client constructs the proof explicitly with the prover and
    // installs it.
    let labels = nexus.labels_of(client).unwrap();
    let goal = parse("Manager says ok(request)").unwrap();
    let proof = prove(&goal, &labels, ProverConfig::default())
        .expect("prover must find the delegation proof");
    nexus
        .sys_set_proof(client, "open", &ResourceId::file("/f"), proof)
        .unwrap();
    assert!(nexus.syscall(client, Syscall::Open("/f".into())).is_ok());
}

#[test]
fn certificates_carry_trust_across_machines() {
    // Machine A: a type checker labels a program.
    let machine_a = boot(3);
    let checker = machine_a.spawn("typechecker", b"tc");
    let h = machine_a.sys_say(checker, "isTypeSafe(PGM)").unwrap();
    let cert = machine_a.externalize(checker, h).unwrap();
    let ek_a = machine_a.tpm().ek_public();

    // Machine B: a store trusts machine A's TPM and admits the
    // statement, fully qualified.
    let machine_b = boot(4);
    let store = machine_b.spawn("objectstore", b"store");
    machine_b.import_cert(store, &cert, &ek_a).unwrap();
    let labels = machine_b.labels_of(store).unwrap();
    assert_eq!(labels.len(), 1);
    let label = labels[0].to_string();
    assert!(label.contains("isTypeSafe(PGM)"));
    assert!(
        label.starts_with("key:"),
        "attribution via NK chain: {label}"
    );

    // A tampered certificate is rejected.
    let mut bad = cert.clone();
    bad.statement = "isTypeSafe(EVIL)".into();
    assert!(machine_b.import_cert(store, &bad, &ek_a).is_err());
}

#[test]
fn decision_cache_interacts_with_goal_and_proof_updates() {
    let nexus = boot(5);
    let pid = nexus.spawn("app", b"app");
    nexus.fs_create(pid, "/f").unwrap();
    // Warm.
    for _ in 0..10 {
        nexus.syscall(pid, Syscall::Open("/f".into())).unwrap();
    }
    let h1 = nexus.decision_cache_stats().hits;
    assert!(h1 >= 8);

    // Proof update invalidates exactly the entry; access still works
    // (auto-prove) and re-warms.
    nexus
        .sys_set_proof(
            pid,
            "open",
            &ResourceId::file("/f"),
            Proof::assume(parse("Nobody says nothing").unwrap()),
        )
        .unwrap();
    // The bogus stored proof now fails: missing credential.
    assert!(nexus.syscall(pid, Syscall::Open("/f".into())).is_err());
    nexus
        .sys_clear_proof(pid, "open", &ResourceId::file("/f"))
        .unwrap();
    assert!(nexus.syscall(pid, Syscall::Open("/f".into())).is_ok());
}

#[test]
fn no_goal_no_superuser_lockout_is_real() {
    let nexus = boot(6);
    let pid = nexus.spawn("app", b"app");
    nexus.fs_create(pid, "/f").unwrap();
    nexus
        .sys_setgoal(
            pid,
            ResourceId::file("/f"),
            "setgoal",
            nexus_nal::Formula::False,
        )
        .unwrap();
    // Even the owner can no longer change goals on this file.
    assert!(nexus
        .sys_setgoal(
            pid,
            ResourceId::file("/f"),
            "open",
            nexus_nal::Formula::True
        )
        .is_err());
}
