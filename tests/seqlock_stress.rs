//! Oversubscribed stress of the lock-free (seqlock) read path.
//!
//! 64 OS threads — far more than the harness has cores — hammer the
//! decision cache's optimistic hit path while a mutator invalidates
//! concurrently, through both invalidation channels:
//!
//! * `sys_setgoal` (subregion invalidation + goal-epoch bump), and
//! * `transfer_label` (label-removal-epoch bump + full cache clear).
//!
//! The obligation under test is the same no-stale-allow invariant the
//! mutexed baseline had: once the invalidating call has *returned*, no
//! decision made under the old goal/credential set may be served. A
//! torn seqlock read that surfaced as a verdict, or a stale fill that
//! survived the epoch validation, would show up here as an allow after
//! the invalidation returned.

use nexus_core::ResourceId;
use nexus_kernel::{Nexus, NexusConfig};
use nexus_nal::{parse, Formula, Principal, Proof};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Deliberately oversubscribed (the CI runners have far fewer cores):
/// forced preemption mid-seqlock-read is exactly the schedule that
/// tears an unprotected optimistic read.
const READERS: usize = 64;
const MAX_READS_PER_THREAD: usize = 100_000;

#[test]
fn seqlock_64_readers_no_stale_allow_after_setgoal() {
    let nexus = Arc::new(Nexus::boot_default().unwrap());
    let owner = nexus.spawn("owner", b"img");
    nexus.fs_create(owner, "/seqlock").unwrap();
    let object = ResourceId::file("/seqlock");
    let allow_goal = || parse("$subject says read(file:/seqlock)").unwrap();
    nexus
        .sys_setgoal(owner, object.clone(), "read", allow_goal())
        .unwrap();

    let reader_pids: Vec<u64> = (0..READERS)
        .map(|i| nexus.spawn(&format!("r{i}"), b"img"))
        .collect();
    // Every authorize performs exactly one decision-cache lookup;
    // count them to reconcile the striped stats at the end.
    let calls = Arc::new(AtomicU64::new(0));
    let rounds = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let handles: Vec<_> = reader_pids
        .iter()
        .map(|&pid| {
            let nexus = Arc::clone(&nexus);
            let object = object.clone();
            let (calls, rounds, stop) =
                (Arc::clone(&calls), Arc::clone(&rounds), Arc::clone(&stop));
            std::thread::spawn(move || {
                let (mut allows, mut denies) = (0u64, 0u64);
                for _ in 0..MAX_READS_PER_THREAD {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    calls.fetch_add(1, Ordering::Relaxed);
                    // The goal flips concurrently, so either verdict
                    // is legal here; the mutator checks the
                    // post-setgoal obligation.
                    if nexus.authorize(pid, "read", &object).unwrap() {
                        allows += 1;
                    } else {
                        denies += 1;
                    }
                    rounds.fetch_add(1, Ordering::Relaxed);
                }
                (allows, denies)
            })
        })
        .collect();

    const CYCLES: usize = 15;
    let mut lost = 0u64;
    for _ in 0..CYCLES {
        calls.fetch_add(1, Ordering::Relaxed);
        nexus
            .sys_setgoal(owner, object.clone(), "read", Formula::False)
            .unwrap();
        // Hold the false-goal window open until rounds that started
        // inside it have finished (at most READERS were in flight when
        // the goal flipped); a deadline keeps a wedged run from
        // spinning forever.
        let base = rounds.load(Ordering::Relaxed);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while rounds.load(Ordering::Relaxed) < base + 2 * READERS as u64
            && std::time::Instant::now() < deadline
        {
            std::thread::yield_now();
        }
        for &pid in &reader_pids {
            calls.fetch_add(1, Ordering::Relaxed);
            if nexus.authorize(pid, "read", &object).unwrap() {
                lost += 1;
            }
        }
        calls.fetch_add(1, Ordering::Relaxed);
        nexus
            .sys_setgoal(owner, object.clone(), "read", allow_goal())
            .unwrap();
        calls.fetch_add(1, Ordering::Relaxed);
        assert!(
            nexus.authorize(reader_pids[0], "read", &object).unwrap(),
            "satisfiable goal must allow after setgoal returns"
        );
    }
    stop.store(true, Ordering::Relaxed);

    let (mut allows, mut denies) = (0u64, 0u64);
    for h in handles {
        let (a, d) = h.join().unwrap();
        allows += a;
        denies += d;
    }
    assert_eq!(
        lost, 0,
        "an allow was served after its goal was set to false — stale seqlock read"
    );
    assert!(allows > 0, "readers never saw the satisfiable goal");
    assert!(denies > 0, "readers never saw the false goal");

    // Striped-stats reconciliation under maximal thread churn: every
    // authorize did exactly one lookup that counted exactly one hit
    // XOR one miss (the +1 is the setup setgoal's own authorization).
    let d = nexus.decision_cache_stats();
    assert_eq!(
        d.hits + d.misses,
        calls.load(Ordering::Relaxed) + 1,
        "lookup / hit / miss accounting drifted under contention: {d:?}"
    );
    assert!(d.invalidations > 0, "setgoal must invalidate subregions");
}

#[test]
fn seqlock_no_stale_allow_after_transfer_label() {
    // Credential-flavoured variant: the allow depends on a label the
    // subject holds, and the mutator repeatedly takes it away with
    // `transfer_label` (removal-epoch bump + cache clear) and hands it
    // back. Once a transfer-away has returned, the subject must be
    // denied — a cached allow surviving the clear, or a fill stamped
    // before the removal epoch moved, would leak through here.
    let nexus = Arc::new(Nexus::boot_default().unwrap());
    let owner = nexus.spawn("owner", b"img");
    let object = ResourceId::new("bench", "seqlock-xfer");
    nexus.grant_ownership(owner, &object).unwrap();
    nexus
        .sys_setgoal(owner, object.clone(), "op", parse("Gate says g0").unwrap())
        .unwrap();
    let subject = nexus.spawn("subject", b"img");
    let vault = nexus.spawn("vault", b"img");
    let mut handle = nexus
        .kernel_label(subject, Principal::name("Gate"), parse("g0").unwrap())
        .unwrap();
    nexus
        .sys_set_proof(
            subject,
            "op",
            &object,
            Proof::assume(parse("Gate says g0").unwrap()),
        )
        .unwrap();
    // Freeze the config to the measured regime: stored proof only, no
    // auto-prove rescue, decision cache on its default (lock-free)
    // read path.
    nexus.set_config(NexusConfig {
        auto_prove: false,
        ..NexusConfig::default()
    });
    assert!(nexus.authorize(subject, "op", &object).unwrap());

    const XFER_READERS: usize = 16;
    let stop = Arc::new(AtomicBool::new(false));
    let rounds = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..XFER_READERS)
        .map(|_| {
            let nexus = Arc::clone(&nexus);
            let object = object.clone();
            let (rounds, stop) = (Arc::clone(&rounds), Arc::clone(&stop));
            std::thread::spawn(move || {
                let (mut allows, mut denies) = (0u64, 0u64);
                for _ in 0..MAX_READS_PER_THREAD {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // Racing the transfer: either verdict is legal,
                    // but it must be a real verdict (no torn state —
                    // authorize itself would panic or err on one).
                    if nexus.authorize(subject, "op", &object).unwrap() {
                        allows += 1;
                    } else {
                        denies += 1;
                    }
                    rounds.fetch_add(1, Ordering::Relaxed);
                }
                (allows, denies)
            })
        })
        .collect();

    for _ in 0..30 {
        handle = nexus.transfer_label(subject, handle, vault).unwrap();
        assert!(
            !nexus.authorize(subject, "op", &object).unwrap(),
            "allow served after transfer_label removed the credential"
        );
        // Hold the credential-absent window open until rounds that
        // started inside it have finished (at most XFER_READERS were
        // in flight when the transfer returned) — otherwise on a
        // single-core host the transfer-back can land before any
        // reader ever runs inside the window.
        let base = rounds.load(Ordering::Relaxed);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while rounds.load(Ordering::Relaxed) < base + 2 * XFER_READERS as u64
            && std::time::Instant::now() < deadline
        {
            std::thread::yield_now();
        }
        handle = nexus.transfer_label(vault, handle, subject).unwrap();
        assert!(
            nexus.authorize(subject, "op", &object).unwrap(),
            "credential handed back must take effect once transfer returns"
        );
    }
    stop.store(true, Ordering::Relaxed);

    let (mut allows, mut denies) = (0u64, 0u64);
    for h in handles {
        let (a, d) = h.join().unwrap();
        allows += a;
        denies += d;
    }
    assert!(allows > 0, "readers never saw the credential present");
    assert!(denies > 0, "readers never saw the credential absent");
    let d = nexus.decision_cache_stats();
    assert!(d.invalidations > 0, "transfer_label must clear the cache");
}
