//! Distributed stale-allow stress: the cluster analog of
//! `tests/seqlock_stress.rs`.
//!
//! A credential is replicated to every node of a 3/5/7-node cluster,
//! reader threads hammer `authorize` against each node's kernel, and
//! the main thread drives a revocation broadcast through the
//! simulated network. The obligation under test is the distributed
//! extension of the no-stale-allow invariant: the moment the
//! revocation is *delivered and applied* at node N (which runs the
//! full revocation fence inside the delivery step), no authorization
//! on N may return an allow backed by the revoked credential.
//! Between broadcast and delivery a node legitimately still allows —
//! that window is cross-node revocation latency, measured by
//! `reproduce fig11`, not a violation.
//!
//! Every schedule is seeded and every assertion prints the seed; a
//! failure replays exactly.

use nexus_core::ResourceId;
use nexus_dist::Cluster;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const CYCLES: usize = 3;
const MAX_READS_PER_THREAD: usize = 200_000;

#[test]
fn no_stale_allow_after_delivered_revocation_across_cluster_sizes() {
    for n in [3usize, 5, 7] {
        for seed in [11u64, 17] {
            run_config(n, seed);
        }
    }
}

fn run_config(n: usize, seed: u64) {
    let mut cluster = Cluster::new(n, seed);
    let object = ResourceId::new("bench", "dist-stress");
    cluster.install_goal(&object, "op", "CA says ok");
    let mut rec = cluster.mint(0, "alice", "CA", "ok");
    assert!(
        cluster.run_until_converged(8),
        "setup convergence: n={n} seed={seed}"
    );
    for i in 0..n as u32 {
        assert!(
            cluster.authorize(i, "alice", "op", &object),
            "replicated credential must allow at node {i}: n={n} seed={seed}"
        );
    }

    // One reader per node (CI runners are small), each hammering its
    // node's kernel. Per-node *generation* counters encode the
    // revocation window: even = credential may be present, odd = the
    // revocation has been applied (fence included) at that node. A
    // reader counts a violation only when an authorize returned allow
    // AND the generation was odd and unchanged across the whole call
    // — i.e. the call ran entirely after the fence and before any
    // re-mint, so the allow can only be a stale read.
    let stop = Arc::new(AtomicBool::new(false));
    let violations = Arc::new(AtomicU64::new(0));
    let rounds = Arc::new(AtomicU64::new(0));
    let gens: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let handles: Vec<_> = (0..n as u32)
        .map(|i| {
            let nexus = cluster.nexus(i);
            let pid = cluster
                .node(i)
                .lookup_subject("alice")
                .expect("subject replicated");
            let object = object.clone();
            let gen = Arc::clone(&gens[i as usize]);
            let (stop, violations, rounds) = (
                Arc::clone(&stop),
                Arc::clone(&violations),
                Arc::clone(&rounds),
            );
            std::thread::spawn(move || {
                let mut allows = 0u64;
                for _ in 0..MAX_READS_PER_THREAD {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let g1 = gen.load(Ordering::Acquire);
                    let allow = nexus.authorize(pid, "op", &object).unwrap();
                    let g2 = gen.load(Ordering::Acquire);
                    if allow {
                        allows += 1;
                        if g1 == g2 && g1 % 2 == 1 {
                            violations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    rounds.fetch_add(1, Ordering::Relaxed);
                }
                allows
            })
        })
        .collect();

    for cycle in 0..CYCLES {
        // Revoke from a rotating origin and walk the broadcast through
        // the network one delivery at a time, flagging each node the
        // moment the revocation has been applied (fence included)
        // there.
        let origin = (cycle % n) as u32;
        assert!(
            cluster.revoke(origin, &rec),
            "origin must see the record: cycle={cycle} n={n} seed={seed}"
        );
        let mut applied = vec![false; n];
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while applied.iter().any(|&a| !a) {
            assert!(
                std::time::Instant::now() < deadline,
                "revocation never reached every node: n={n} seed={seed}"
            );
            let progressed = cluster.step();
            for i in 0..n {
                if !applied[i] && !cluster.has_label(i as u32, &rec) {
                    applied[i] = true;
                    gens[i].fetch_add(1, Ordering::Release); // even → odd
                                                             // Direct probe: the fence ran inside the step, so
                                                             // this call (started strictly after) must deny.
                    assert!(
                        !cluster.authorize(i as u32, "alice", "op", &object),
                        "allow served after revocation applied at node {i}: n={n} seed={seed}"
                    );
                }
            }
            if !progressed {
                cluster.anti_entropy();
            }
        }
        cluster.run_to_quiescence(usize::MAX);

        // Hold the revoked window open until every reader has made at
        // least a couple of calls inside it.
        let base = rounds.load(Ordering::Relaxed);
        let hold = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while rounds.load(Ordering::Relaxed) < base + 2 * n as u64
            && std::time::Instant::now() < hold
        {
            std::thread::yield_now();
        }

        // Re-mint, closing the revoked windows first — the label may
        // reappear at any node as soon as its delivery quorum forms.
        for gen in &gens {
            gen.fetch_add(1, Ordering::Release); // odd → even
        }
        rec = cluster.mint(((cycle + 1) % n) as u32, "alice", "CA", "ok");
        assert!(
            cluster.run_until_converged(8),
            "re-mint convergence: cycle={cycle} n={n} seed={seed}"
        );
        for i in 0..n as u32 {
            assert!(
                cluster.authorize(i, "alice", "op", &object),
                "re-minted credential must allow at node {i}: cycle={cycle} n={n} seed={seed}"
            );
        }
    }
    stop.store(true, Ordering::Relaxed);

    let mut total_allows = 0u64;
    for h in handles {
        total_allows += h.join().unwrap();
    }
    assert_eq!(
        violations.load(Ordering::Relaxed),
        0,
        "stale allow after delivered revocation: n={n} seed={seed}"
    );
    assert!(
        total_allows > 0,
        "readers never saw the replicated credential: n={n} seed={seed}"
    );
    // Every node's kernel saw every revocation (fence ran there), and
    // no delivery failed to apply.
    for i in 0..n as u32 {
        let ds = cluster.nexus(i).dist_stats();
        assert_eq!(
            ds.remote_revocations, CYCLES as u64,
            "fence count off at node {i}: n={n} seed={seed}"
        );
        assert_eq!(
            cluster.node(i).stats().apply_errors,
            0,
            "apply error at node {i}: n={n} seed={seed}"
        );
    }
}
