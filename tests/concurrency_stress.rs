//! Multi-threaded stress of the shared authorization path.
//!
//! N reader threads hammer `Arc<Nexus>` with authorized file reads —
//! half inline through `authorize`, half as `authorize_async` tickets
//! over the `nexus-authzd` pipeline — while an invalidator thread
//! flips the file's `read` goal between an always-satisfiable formula
//! and `false` via `setgoal`. The serializability obligation (in the
//! spirit of Amir et al., "Deciding Serializability in Network
//! Systems"): once a `setgoal` has returned, no decision under the
//! *previous* goal may be served — a stale decision-cache fill racing
//! the invalidation, or an in-flight pipeline batch completing after
//! the invalidation fence, would be a lost invalidation, observable
//! below as an allow after the goal became `false`.

use nexus_core::ResourceId;
use nexus_kernel::{
    AuthzOutcome, BootImages, GuardPoolConfig, Nexus, NexusConfig, SysRet, Syscall,
};
use nexus_nal::Formula;
use nexus_storage::RamDisk;
use nexus_tpm::Tpm;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The acceptance criterion's compile-time assertion: the kernel is
/// shareable across threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Nexus>();
};

const READERS: usize = 8;
/// Hard bound on per-thread reads (readers otherwise run until the
/// invalidator finishes its cycles).
const MAX_READS_PER_THREAD: usize = 200_000;
const INVALIDATION_CYCLES: usize = 60;

fn allow_goal() -> Formula {
    // Satisfiable by any subject: the request itself utters
    // `$subject says read(<object>)` over the attested channel.
    nexus_nal::parse("$subject says read(file:/shared)").unwrap()
}

#[test]
fn concurrent_reads_with_goal_invalidation() {
    let nexus = Arc::new(
        Nexus::boot(
            Tpm::new_with_seed(0x57e5),
            RamDisk::new(),
            &BootImages::standard(),
            NexusConfig::default(),
        )
        .unwrap(),
    );
    let owner = nexus.spawn("owner", b"owner-image");
    nexus.fs_create(owner, "/shared").unwrap();
    nexus.fs_write_all(owner, "/shared", b"hot data").unwrap();
    let object = ResourceId::file("/shared");
    nexus
        .sys_setgoal(owner, object.clone(), "read", allow_goal())
        .unwrap();
    // `open` keeps a permanently satisfiable goal so reader threads
    // always reach the `read` authorization, whose goal is the one
    // being flipped.
    nexus
        .sys_setgoal(
            owner,
            object.clone(),
            "open",
            nexus_nal::parse("$subject says open(file:/shared)").unwrap(),
        )
        .unwrap();
    // Half the readers authorize through the async pipeline.
    let pool = nexus.start_authz_pipeline(GuardPoolConfig {
        workers: 4,
        ..Default::default()
    });

    let reader_pids: Vec<u64> = (0..READERS)
        .map(|i| nexus.spawn(&format!("reader{i}"), b"reader-image"))
        .collect();

    // Every authorize() performs exactly one decision-cache lookup;
    // count them so the stats totals can be reconciled at the end.
    let authorize_calls = Arc::new(AtomicU64::new(0));
    // Completed reader rounds — the invalidator uses this to hold the
    // false-goal window open until rounds that *started inside it*
    // have finished, decoupling the test from scheduler fairness.
    let reader_rounds = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let lost_invalidations = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for (i, &pid) in reader_pids.iter().enumerate() {
        let nexus = Arc::clone(&nexus);
        let calls = Arc::clone(&authorize_calls);
        let rounds = Arc::clone(&reader_rounds);
        let object = object.clone();
        let stop = Arc::clone(&stop);
        // Even-index readers block on completion tickets; odd-index
        // readers take the classic sync entry point (which itself
        // rides the pipeline on a cache miss).
        let use_tickets = i % 2 == 0;
        handles.push(std::thread::spawn(move || {
            let mut allows = 0u64;
            let mut denies = 0u64;
            for _ in 0..MAX_READS_PER_THREAD {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                calls.fetch_add(1, Ordering::Relaxed);
                // The goal flips concurrently, so either verdict is
                // legal *here*; the invalidator thread checks the
                // post-setgoal obligation.
                let allowed = if use_tickets {
                    match nexus.authorize_async(pid, "read", &object).unwrap().wait() {
                        AuthzOutcome::Allow => true,
                        AuthzOutcome::Deny => false,
                        AuthzOutcome::Fault(m) => panic!("pipeline fault mid-run: {m}"),
                    }
                } else {
                    nexus.authorize(pid, "read", &object).unwrap()
                };
                if allowed {
                    allows += 1;
                    // An allowed read must actually succeed end-to-end
                    // unless the goal flipped between the two calls.
                    let fd = match nexus.syscall(pid, Syscall::Open("/shared".into())) {
                        Ok(SysRet::Int(fd)) => fd,
                        Ok(other) => panic!("open returned {other:?}"),
                        Err(_) => {
                            calls.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    };
                    // open + read below each authorize once more.
                    calls.fetch_add(2, Ordering::Relaxed);
                    if let Ok(SysRet::Data(data)) = nexus.syscall(pid, Syscall::Read(fd, 8)) {
                        assert_eq!(&data, b"hot data");
                    }
                    let _ = nexus.syscall(pid, Syscall::Close(fd));
                } else {
                    denies += 1;
                }
                rounds.fetch_add(1, Ordering::Relaxed);
            }
            (allows, denies)
        }));
    }

    // The invalidator: flip the goal, and after every flip to `false`
    // verify no reader subject can still be allowed — a stale cache
    // entry surviving the subregion invalidation would show up here.
    let invalidator = {
        let nexus = Arc::clone(&nexus);
        let calls = Arc::clone(&authorize_calls);
        let rounds = Arc::clone(&reader_rounds);
        let lost = Arc::clone(&lost_invalidations);
        let reader_pids = reader_pids.clone();
        let object = object.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for _ in 0..INVALIDATION_CYCLES {
                // setgoal itself authorizes (one lookup), then the
                // probe authorizes once per reader.
                calls.fetch_add(1, Ordering::Relaxed);
                nexus
                    .sys_setgoal(owner, object.clone(), "read", Formula::False)
                    .unwrap();
                // Hold the window until 2×READERS rounds complete: at
                // most READERS of them were already in flight when the
                // goal flipped, so at least READERS started after the
                // setgoal returned and must have been denied. A
                // deadline keeps a wedged run from spinning forever
                // (it would then fail the deny assertion instead).
                let base = rounds.load(Ordering::Relaxed);
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                while rounds.load(Ordering::Relaxed) < base + 2 * READERS as u64
                    && std::time::Instant::now() < deadline
                {
                    std::thread::yield_now();
                }
                for &pid in &reader_pids {
                    calls.fetch_add(1, Ordering::Relaxed);
                    if nexus.authorize(pid, "read", &object).unwrap() {
                        lost.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // The same obligation through tickets: a ticket
                // obtained after setgoal returned must never complete
                // with an allow under the dead goal.
                let tickets: Vec<_> = reader_pids
                    .iter()
                    .map(|&pid| {
                        calls.fetch_add(1, Ordering::Relaxed);
                        nexus.authorize_async(pid, "read", &object).unwrap()
                    })
                    .collect();
                for t in tickets {
                    if t.wait().is_allow() {
                        lost.fetch_add(1, Ordering::Relaxed);
                    }
                }
                calls.fetch_add(1, Ordering::Relaxed);
                nexus
                    .sys_setgoal(owner, object.clone(), "read", allow_goal())
                    .unwrap();
                // And the allow goal must take effect immediately too.
                calls.fetch_add(1, Ordering::Relaxed);
                assert!(
                    nexus.authorize(reader_pids[0], "read", &object).unwrap(),
                    "satisfiable goal must allow after setgoal returns"
                );
            }
            stop.store(true, Ordering::Relaxed);
        })
    };

    let mut total_allows = 0u64;
    let mut total_denies = 0u64;
    for h in handles {
        let (a, d) = h.join().unwrap();
        total_allows += a;
        total_denies += d;
    }
    invalidator.join().unwrap();

    assert_eq!(
        lost_invalidations.load(Ordering::Relaxed),
        0,
        "an allow was served after its goal was set to false — lost invalidation"
    );
    // The pipeline drained everything it accepted.
    pool.quiesce();
    let pool_stats = nexus.authz_stats().expect("pipeline running");
    assert_eq!(pool_stats.submitted, pool_stats.completed);
    nexus.stop_authz_pipeline();
    // Work actually interleaved both ways: the invalidator held each
    // false-goal window open until reader rounds completed inside it.
    assert!(total_allows > 0, "readers never saw the satisfiable goal");
    assert!(
        total_denies > 0,
        "readers never saw the false goal: allows={total_allows}"
    );

    // Stats reconciliation: every guard upcall came from exactly one
    // decision-cache miss path, and every authorize did exactly one
    // cache lookup.
    let g = nexus.guard_stats();
    assert_eq!(
        g.checks,
        nexus.guard_upcalls(),
        "guard invocations must equal kernel guard upcalls"
    );
    let d = nexus.decision_cache_stats();
    // fs_create/fs_write_all/setgoal setup before the threads also
    // authorized; count them: write(1) + setgoal(2) = 3 lookups (the
    // fs_create path does not authorize).
    let counted = authorize_calls.load(Ordering::Relaxed) + 3;
    assert_eq!(
        d.hits + d.misses,
        counted,
        "every authorize must do exactly one decision-cache lookup"
    );
    assert!(d.invalidations > 0, "setgoal must invalidate subregions");
}

#[test]
fn bounded_admission_under_load_never_wedges_or_lies() {
    // A deliberately tiny high-water mark under heavy concurrent
    // submission: sync callers must still get the *correct* verdict
    // (overflow faults shed them to the inline path), async callers
    // must resolve promptly as either the correct verdict or a fault
    // — never a wrong answer, never an unbounded wait.
    use nexus_kernel::OverflowPolicy;
    let nexus = Arc::new(Nexus::boot_default().unwrap());
    let owner = nexus.spawn("owner", b"img");
    nexus.fs_create(owner, "/b").unwrap();
    let object = ResourceId::file("/b");
    nexus
        .sys_setgoal(
            owner,
            object.clone(),
            "read",
            nexus_nal::parse("$subject says read(file:/b)").unwrap(),
        )
        .unwrap();
    let pool = nexus.start_authz_pipeline(GuardPoolConfig {
        workers: 2,
        max_batch: 8,
        max_queued: 2,
        overflow: OverflowPolicy::Reject,
        external_workers: 1,
        prioritizer: None,
        stage_timers: None,
    });
    // Fresh subjects each round dodge the decision cache, keeping the
    // submission queue under genuine pressure.
    let faults = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..8usize {
        let nexus = Arc::clone(&nexus);
        let object = object.clone();
        let faults = Arc::clone(&faults);
        let use_tickets = t % 2 == 0;
        handles.push(std::thread::spawn(move || {
            for i in 0..200 {
                let pid = nexus.spawn(&format!("b{t}-{i}"), b"img");
                if use_tickets {
                    match nexus.authorize_async(pid, "read", &object).unwrap().wait() {
                        AuthzOutcome::Allow => {}
                        AuthzOutcome::Deny => panic!("satisfiable goal denied"),
                        AuthzOutcome::Fault(_) => {
                            faults.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                } else {
                    // The sync path must absorb rejection by falling
                    // back inline: always the true verdict.
                    assert!(nexus.authorize(pid, "read", &object).unwrap());
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    pool.quiesce();
    let stats = nexus.authz_stats().expect("pipeline running");
    assert_eq!(stats.submitted, stats.completed, "{stats:?}");
    // Everything the pool refused is accounted for: async callers saw
    // exactly the faults the admission controller issued to them.
    assert!(
        faults.load(Ordering::Relaxed) <= stats.rejected,
        "async fault count exceeds rejections: {stats:?}"
    );
    nexus.stop_authz_pipeline();
}

#[test]
fn concurrent_say_and_authorize_do_not_deadlock() {
    // Writers mutate labelstores while readers authorize — exercises
    // the IPD table's reader-writer lock from both sides.
    let nexus = Arc::new(Nexus::boot_default().unwrap());
    let pid = nexus.spawn("chatty", b"img");
    nexus.fs_create(pid, "/f").unwrap();
    let object = ResourceId::file("/f");
    let mut handles = Vec::new();
    for _ in 0..4 {
        let nexus = Arc::clone(&nexus);
        handles.push(std::thread::spawn(move || {
            for i in 0..200 {
                nexus.sys_say(pid, &format!("fact{i}")).unwrap();
            }
        }));
    }
    for _ in 0..4 {
        let nexus = Arc::clone(&nexus);
        let object = object.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..200 {
                let _ = nexus.authorize(pid, "read", &object).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}
