//! Cross-crate integration: the attestation analyzer gating a real
//! application (ISSUE 8). A clean encoder's `panic_free` credential
//! authorizes CertiPics uploads; mutating the binary revokes it and
//! flips a previously-allowed upload to deny within one call; the
//! whole story lands in the telemetry counters and the audit journal.

use nexus_analyzers::attest::Claim;
use nexus_analyzers::bin::{BlockId, FuncId, Inst};
use nexus_apps::certipics::{sample_encoder, CertiPicsService, Image};
use nexus_apps::fauxbook::{Fauxbook, DEFAULT_TENANT};
use nexus_kernel::{AuditPath, AuditVerdict, BootImages, Nexus, NexusConfig};
use nexus_storage::RamDisk;
use nexus_tpm::Tpm;
use std::sync::Arc;

fn boot() -> Arc<Nexus> {
    Arc::new(
        Nexus::boot(
            Tpm::new_with_seed(0xa77e),
            RamDisk::new(),
            &BootImages::standard(),
            NexusConfig::default(),
        )
        .expect("boot"),
    )
}

#[test]
fn certipics_gate_revokes_on_binary_mutation() {
    let nexus = boot();
    let svc = CertiPicsService::deploy(Arc::clone(&nexus)).expect("deploy");
    let img = Image::solid(8, 8, 42);

    // First contact: the clean encoder earns both credentials and may
    // upload (the second upload is a pure decision-cache hit).
    let clean = sample_encoder("encoder-v1", 8);
    let (pid, att) = svc.register_encoder("encoder", &clean).expect("register");
    assert!(att.holds(Claim::PanicFree) && att.holds(Claim::NoUnsafe));
    assert!(!att.cached);
    assert!(svc.upload(pid, &img).expect("upload"));
    assert!(svc.upload(pid, &img).expect("upload"));

    // Re-presenting the unchanged binary is a cache hit, not a
    // re-analysis.
    let before = nexus.attest_stats();
    let again = svc.reattest(pid, &clean).expect("reattest");
    assert!(again.cached && again.holds(Claim::PanicFree));
    let after = nexus.attest_stats();
    assert_eq!(after.analysis_cache_hits, before.analysis_cache_hits + 1);
    assert_eq!(after.analyses_run, before.analyses_run);

    // The encoder ships an update with a reachable panic: re-analysis
    // revokes both old credentials and refuses `panic_free` — and the
    // upload that was just allowed is denied on the very next call.
    let mut crashy = clean.clone();
    crashy.push(FuncId(0), BlockId(0), Inst::Panic);
    let att2 = svc.reattest(pid, &crashy).expect("reattest");
    assert_eq!(att2.revoked, 2, "both stale credentials must be revoked");
    assert!(!att2.holds(Claim::PanicFree));
    assert!(
        att2.refusal(Claim::PanicFree).unwrap().contains("panic"),
        "refusal must carry the analysis witness"
    );
    assert!(
        !svc.upload(pid, &img).expect("upload"),
        "revocation must flip the cached allow to deny immediately"
    );

    // Only the two pre-revocation uploads were accepted.
    assert_eq!(svc.accepted().len(), 2);

    // The whole story is visible in the counters…
    let stats = nexus.attest_stats();
    assert!(stats.analyses_run >= 2);
    assert!(stats.credentials_minted >= 2);
    assert_eq!(stats.credentials_revoked, 2);
    assert!(stats.credentials_refused >= 1);

    // …and in the audit journal: Analyzer-path mint, revoke, and a
    // refusal carrying its witness.
    let events = nexus.audit_recent(64);
    let analyzer_events: Vec<_> = events
        .iter()
        .filter(|e| e.path == AuditPath::Analyzer)
        .collect();
    assert!(analyzer_events
        .iter()
        .any(|e| e.verdict == AuditVerdict::Mint && e.op == "panic_free"));
    assert!(analyzer_events
        .iter()
        .any(|e| e.verdict == AuditVerdict::Revoke));
    assert!(analyzer_events.iter().any(|e| {
        e.verdict == AuditVerdict::Refuse
            && e.op == "panic_free"
            && e.refuted.as_deref().is_some_and(|w| w.contains("panic"))
    }));
}

#[test]
fn certipics_unattested_encoder_never_uploads() {
    let nexus = boot();
    let svc = CertiPicsService::deploy(Arc::clone(&nexus)).expect("deploy");
    // An encoder that skipped analysis entirely holds no credential.
    let stranger = nexus.spawn("stranger", b"stranger-image");
    assert!(!svc
        .upload(stranger, &Image::solid(4, 4, 1))
        .expect("upload"));
}

#[test]
fn fauxbook_tenant_holds_imports_clean_credential() {
    let fb = Fauxbook::deploy(DEFAULT_TENANT).expect("deploy");
    // The deploy-time attestation bundle now includes the analyzer's
    // minted credential…
    assert!(
        fb.attestation_labels()
            .iter()
            .any(|l| l.to_string().contains("imports_clean")),
        "attestation bundle must include imports_clean"
    );
    // …and the credential really sits in the tenant's labelstore (it
    // was minted, not just quoted).
    let labels = fb.nexus.labels_of(fb.tenant_pid).expect("labels");
    assert!(
        labels
            .iter()
            .any(|l| l.to_string().contains("imports_clean")),
        "tenant labelstore must hold the minted credential, got {labels:?}"
    );
}
