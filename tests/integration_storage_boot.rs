//! Cross-crate integration: attested storage surviving (and aborting)
//! across full kernel reboots.

use nexus_kernel::{BootImages, Nexus, NexusConfig};
use nexus_storage::{Disk, RamDisk, SsrConfig, SsrManager, VdirTable};
use nexus_tpm::Tpm;

fn cfg() -> NexusConfig {
    NexusConfig::default()
}

#[test]
fn ssr_data_survives_reboot() {
    let nexus = Nexus::boot(
        Tpm::new_with_seed(41),
        RamDisk::new(),
        &BootImages::standard(),
        cfg(),
    )
    .unwrap();
    {
        let mut ssrs = nexus.ssrs();
        let mut vdirs = nexus.vdirs();
        let mut disk = nexus.disk();
        let mut tpm = nexus.tpm();
        ssrs.create("cookies", SsrConfig::default(), &mut vdirs, &mut tpm)
            .unwrap();
        ssrs.write_all(
            "cookies",
            b"session-token-xyz",
            &mut *disk,
            &mut vdirs,
            &nexus.vkeys(),
        )
        .unwrap();
        ssrs.sync(&mut *disk, &vdirs, &mut tpm).unwrap();
    }
    // Reboot the same kernel on the same TPM and disk.
    let (tpm, disk) = nexus.shutdown();
    let nexus2 = Nexus::boot(tpm, disk, &BootImages::standard(), cfg()).unwrap();
    assert!(!nexus2.first_boot());
    let data = nexus2
        .ssrs()
        .read_all("cookies", &*nexus2.disk(), &nexus2.vdirs(), &nexus2.vkeys())
        .unwrap();
    assert_eq!(&data[..17], b"session-token-xyz");
}

#[test]
fn replayed_disk_blocks_boot() {
    let nexus = Nexus::boot(
        Tpm::new_with_seed(42),
        RamDisk::new(),
        &BootImages::standard(),
        cfg(),
    )
    .unwrap();
    let snapshot = {
        let mut ssrs = nexus.ssrs();
        let mut vdirs = nexus.vdirs();
        let mut disk = nexus.disk();
        let mut tpm = nexus.tpm();
        let vkeys = nexus.vkeys();
        ssrs.create("counter", SsrConfig::default(), &mut vdirs, &mut tpm)
            .unwrap();
        ssrs.write_all("counter", b"balance=100", &mut *disk, &mut vdirs, &vkeys)
            .unwrap();
        ssrs.sync(&mut *disk, &vdirs, &mut tpm).unwrap();
        let snap = disk.snapshot();
        ssrs.write_all("counter", b"balance=000", &mut *disk, &mut vdirs, &vkeys)
            .unwrap();
        ssrs.sync(&mut *disk, &vdirs, &mut tpm).unwrap();
        snap
    };
    // Attacker re-images the disk with the old (richer) state.
    let (tpm, mut disk) = nexus.shutdown();
    disk.restore(snapshot);
    let err = Nexus::boot(tpm, disk, &BootImages::standard(), cfg());
    assert!(err.is_err(), "replayed disk must abort boot");
}

#[test]
fn different_kernel_cannot_unseal_state() {
    let nexus = Nexus::boot(
        Tpm::new_with_seed(43),
        RamDisk::new(),
        &BootImages::standard(),
        cfg(),
    )
    .unwrap();
    {
        let disk = nexus.disk();
        let tpm = nexus.tpm();
        VdirTable::recover(&*disk, &tpm).ok(); // touch nothing, just prove access works
    }
    let (tpm, disk) = nexus.shutdown();
    let evil_images = BootImages {
        kernel: b"patched-kernel-with-backdoor".to_vec(),
        ..BootImages::standard()
    };
    let err = Nexus::boot(tpm, disk, &evil_images, cfg());
    assert!(
        err.is_err(),
        "different measurements must not recover state"
    );
}

#[test]
fn encrypted_ssr_round_trip_through_kernel() {
    let nexus = Nexus::boot(
        Tpm::new_with_seed(44),
        RamDisk::new(),
        &BootImages::standard(),
        cfg(),
    )
    .unwrap();
    let key = nexus.vkeys().create_symmetric(&mut nexus.tpm());
    let mut ssrs = nexus.ssrs();
    let mut vdirs = nexus.vdirs();
    let mut disk = nexus.disk();
    let vkeys = nexus.vkeys();
    ssrs.create(
        "hipaa-records",
        SsrConfig {
            block_size: 256,
            encrypt_with: Some(key),
        },
        &mut vdirs,
        &mut nexus.tpm(),
    )
    .unwrap();
    let record = b"patient: X, diagnosis: Y";
    ssrs.write_all("hipaa-records", record, &mut *disk, &mut vdirs, &vkeys)
        .unwrap();
    // Ciphertext on disk.
    let on_disk = disk.read_file("ssr/hipaa-records/0").unwrap();
    assert!(!on_disk.windows(record.len()).any(|w| w == record));
    // Plaintext through the API.
    let back = ssrs
        .read_all("hipaa-records", &*disk, &vdirs, &vkeys)
        .unwrap();
    assert_eq!(&back[..record.len()], record);
}

#[test]
fn fresh_manager_open_handles_missing_meta() {
    // A first boot has no SSR metadata; open must not fabricate state.
    let disk = RamDisk::new();
    let mut tpm = Tpm::new_with_seed(45);
    tpm.pcrs_mut().extend(0, b"x");
    tpm.take_ownership().unwrap();
    let mut d = disk;
    let vdirs = VdirTable::init_first_boot(&mut d, &mut tpm).unwrap();
    assert!(SsrManager::open(&d, &vdirs).is_err());
}
