//! Cross-crate integration: interpositioning as synthetic trust —
//! reference monitors on live IPC paths, composability, and the
//! analyzer's view of the resulting topology.

use nexus_analyzers::IpcAnalyzer;
use nexus_kernel::{
    BootImages, ChainOutcome, EchoPath, EchoWorld, Interceptor, IpcCall, MonitorLevel, Nexus,
    NexusConfig, Verdict,
};
use nexus_storage::RamDisk;
use nexus_tpm::Tpm;

fn boot(seed: u64) -> Nexus {
    Nexus::boot(
        Tpm::new_with_seed(seed),
        RamDisk::new(),
        &BootImages::standard(),
        NexusConfig::default(),
    )
    .unwrap()
}

struct Redactor;
impl Interceptor for Redactor {
    fn name(&self) -> &str {
        "redactor"
    }
    fn on_call(&mut self, call: &mut IpcCall) -> Verdict {
        // Rewrite payloads: scrub a sensitive marker.
        if let Ok(s) = String::from_utf8(call.args.clone()) {
            call.args = s.replace("SECRET", "******").into_bytes();
        }
        Verdict::Continue
    }
}

struct SizeCap(usize);
impl Interceptor for SizeCap {
    fn name(&self) -> &str {
        "size-cap"
    }
    fn on_call(&mut self, call: &mut IpcCall) -> Verdict {
        if call.args.len() > self.0 {
            Verdict::Block
        } else {
            Verdict::Continue
        }
    }
}

#[test]
fn monitors_rewrite_and_block_composably() {
    let nexus = boot(1);
    let a = nexus.spawn("sender", b"s");
    let b = nexus.spawn("receiver", b"r");
    let port = nexus.create_port(b).unwrap();
    nexus
        .interpose(b, port, Box::new(Redactor), MonitorLevel::Kernel)
        .unwrap();
    nexus
        .interpose(b, port, Box::new(SizeCap(64)), MonitorLevel::Kernel)
        .unwrap();

    nexus
        .ipc_send(a, port, b"the SECRET plan".to_vec())
        .unwrap();
    let (_, msg) = nexus.ipc_recv(b, port).unwrap();
    assert_eq!(msg, b"the ****** plan", "first monitor rewrote the payload");

    let huge = vec![0u8; 100];
    assert!(matches!(
        nexus.ipc_send(a, port, huge),
        Err(nexus_kernel::KernelError::Blocked { .. })
    ));
}

#[test]
fn consent_required_for_interposition() {
    let nexus = boot(2);
    let owner = nexus.spawn("owner", b"o");
    let snoop = nexus.spawn("snoop", b"s");
    let port = nexus.create_port(owner).unwrap();
    // The owner may interpose on its own channel; a stranger may not
    // (no goal admits it).
    assert!(nexus
        .interpose(owner, port, Box::new(Redactor), MonitorLevel::Kernel)
        .is_ok());
    assert!(nexus
        .interpose(snoop, port, Box::new(Redactor), MonitorLevel::Kernel)
        .is_err());
}

#[test]
fn ddrm_confines_driver_and_analyzer_confirms() {
    let nexus = boot(3);
    let mut world = EchoWorld::new(&nexus, EchoPath::UserDriver).unwrap();
    world.install_monitor(&nexus, MonitorLevel::Kernel).unwrap();

    // Traffic flows.
    for _ in 0..50 {
        assert_eq!(world.echo(&nexus, &[7u8; 64]).unwrap(), vec![7u8; 64]);
    }
    // The redirector cached its verdicts.
    let stats = nexus.redirector().stats();
    assert!(stats.hits > 0 && stats.invocations > 0);

    // Off-policy operations on the monitored channel are blocked.
    let mut call = IpcCall {
        subject: 99,
        operation: "dma_peek".into(),
        object: format!("ipc:{}", world.server_port()),
        args: vec![],
    };
    assert!(matches!(
        nexus
            .redirector()
            .dispatch(world.server_port(), &mut call)
            .unwrap(),
        ChainOutcome::Blocked { .. }
    ));

    // The IPC analyzer sees exactly the topology the monitors allow.
    let analyzer_pid = nexus.spawn("analyzer", b"a");
    let analyzer = IpcAnalyzer::new(nexus.principal(analyzer_pid).unwrap());
    let report = analyzer.analyze(&nexus);
    // The analyzer process itself has no channels.
    for pid in nexus.ipds().pids() {
        assert!(!report.has_path(analyzer_pid, pid));
    }
}

#[test]
fn syscall_interposition_upper_bound_behaviour() {
    // Paper Table 1: an interposed call that is blocked returns
    // earlier than a completed call.
    struct BlockAll;
    impl Interceptor for BlockAll {
        fn name(&self) -> &str {
            "block-all"
        }
        fn on_call(&mut self, _call: &mut IpcCall) -> Verdict {
            Verdict::Block
        }
    }
    let nexus = boot(4);
    let pid = nexus.spawn("app", b"a");
    nexus
        .interpose(
            0,
            nexus_kernel::SYSCALL_CHANNEL,
            Box::new(BlockAll),
            MonitorLevel::Kernel,
        )
        .unwrap();
    assert!(nexus.syscall(pid, nexus_kernel::Syscall::Null).is_err());
}
